package fabric

import (
	"context"
	"fmt"
	"time"
)

// This file is the fabric's failure-domain core: a single-goroutine event
// loop that assigns tasks (shards) to workers and absorbs every way a
// worker can disappoint — refuse, throttle, hang, crash, or lie slowly.
// All scheduler state (task and worker structs) is owned by the loop;
// attempt goroutines only perform the HTTP call and report back on a
// channel, so there is no locking and no data race by construction.

// task is one dispatchable unit of work — a campaign shard, a golden
// probe, or a profile shard. The scheduler is agnostic to the payload:
// call performs one attempt against one worker, onDone commits the first
// successful result (journal writes run here, on the event loop).
type task struct {
	label  string
	call   func(ctx context.Context, workerURL string) (any, error)
	onDone func(res any) error

	// Scheduler-owned state.
	failures    int       // failed attempts (429 throttles excluded)
	inflight    int       // outstanding attempts (>1 while hedged)
	launched    time.Time // start of the oldest outstanding attempt
	notBefore   time.Time // backoff gate for the next attempt
	lastURL     string    // worker of the most recent attempt
	lastFailURL string    // worker of the most recent failed attempt
	done        bool
	result      any
	cancels     []context.CancelFunc
}

func (t *task) cancelAll() {
	for _, c := range t.cancels {
		c()
	}
	t.cancels = nil
}

// workerState tracks one worker's health. A worker earns ejection by
// consecutive failures and re-enters on probation when the window passes:
// consecFails is deliberately NOT reset at re-admission, so one more
// failure re-ejects immediately, while one success clears the slate.
type workerState struct {
	url          string
	busy         bool
	consecFails  int
	offlineUntil time.Time // ejection or Retry-After throttle window
}

func (w *workerState) eligible(now time.Time) bool {
	return !w.busy && !now.Before(w.offlineUntil)
}

// attemptEnd is one finished attempt, reported by its goroutine.
type attemptEnd struct {
	t   *task
	w   *workerState
	res any
	err error
}

// runTasks drives every task to completion (or the job to failure) across
// the configured workers. It returns nil only when every task has a
// committed result.
func (c *Coordinator) runTasks(ctx context.Context, kind string, tasks []*task) error {
	workers := make([]*workerState, 0, len(c.cfg.Workers))
	for _, u := range c.cfg.Workers {
		workers = append(workers, &workerState{url: u})
	}
	done := make(chan attemptEnd, len(workers)) // buffered: in-flight attempts can always report, even after an early return

	remaining := 0
	for _, t := range tasks {
		if !t.done {
			remaining++
		}
	}
	outstanding := 0

	fail := func(err error) error {
		for _, t := range tasks {
			t.cancelAll()
		}
		return err
	}

	for remaining > 0 {
		now := time.Now()

		// Dispatch: fresh work first, then hedges for stragglers.
		for _, t := range tasks {
			if t.done || t.inflight != 0 || now.Before(t.notBefore) {
				continue
			}
			w := c.workerFor(t, workers, now, false)
			if w == nil {
				continue
			}
			c.launch(ctx, t, w, done)
			outstanding++
		}
		if c.cfg.HedgeAfter > 0 {
			for _, t := range tasks {
				if t.done || t.inflight != 1 || now.Sub(t.launched) < c.cfg.HedgeAfter {
					continue
				}
				w := c.workerFor(t, workers, now, true)
				if w == nil {
					continue
				}
				c.reg.Counter(`pd_fabric_hedges_total{kind="` + kind + `"}`).Inc()
				c.logf("fabric: hedging %s on %s (first attempt %v old)", t.label, w.url, now.Sub(t.launched).Round(time.Millisecond))
				c.launch(ctx, t, w, done)
				outstanding++
			}
		}

		// Wait for an attempt to finish, a backoff/ejection/hedge deadline
		// to pass, or the whole job to be cancelled.
		var timerC <-chan time.Time
		var timer *time.Timer
		if wake, ok := c.nextWake(tasks, workers, now); ok {
			d := time.Until(wake)
			if d < time.Millisecond {
				d = time.Millisecond
			}
			timer = time.NewTimer(d)
			timerC = timer.C
		} else if outstanding == 0 {
			// No attempts in flight and nothing scheduled to become
			// runnable: the loop would block forever. Cannot happen with a
			// non-empty worker list (ejections and backoffs are finite),
			// but fail loudly rather than hang if the invariant breaks.
			return fail(fmt.Errorf("fabric: scheduler stalled with %d tasks remaining", remaining))
		}

		select {
		case <-ctx.Done():
			if timer != nil {
				timer.Stop()
			}
			return fail(context.Cause(ctx))
		case <-timerC:
			continue
		case ev := <-done:
			if timer != nil {
				timer.Stop()
			}
			outstanding--
			ev.w.busy = false
			ev.t.inflight--
			if ev.t.done {
				// A hedge mate already won. A loser's error is expected
				// (we cancelled it) and says nothing about worker health;
				// a second success still clears the worker's record.
				if ev.err == nil {
					ev.w.consecFails = 0
				}
				continue
			}
			if ev.err == nil {
				ev.w.consecFails = 0
				ev.t.done = true
				ev.t.result = ev.res
				ev.t.cancelAll()
				remaining--
				c.reg.Counter(`pd_fabric_shards_total{kind="` + kind + `"}`).Inc()
				if ev.t.onDone != nil {
					if err := ev.t.onDone(ev.res); err != nil {
						return fail(fmt.Errorf("fabric: committing %s: %w", ev.t.label, err))
					}
				}
				continue
			}
			if err := c.noteFailure(ev, kind, time.Now()); err != nil {
				return fail(err)
			}
		}
	}
	return nil
}

// launch starts one attempt of t on w under a lease: a per-attempt
// deadline after which the coordinator stops waiting and reassigns the
// shard, whatever the worker is (or isn't) doing.
func (c *Coordinator) launch(ctx context.Context, t *task, w *workerState, done chan<- attemptEnd) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.LeaseTimeout)
	t.cancels = append(t.cancels, cancel)
	w.busy = true
	t.lastURL = w.url
	t.inflight++
	if t.inflight == 1 {
		t.launched = time.Now()
	}
	go func() {
		defer cancel()
		res, err := t.call(actx, w.url)
		if err != nil && actx.Err() != nil && ctx.Err() == nil {
			// The lease expired (or the task was superseded), not the job:
			// mark it so the loop can report a reassignment rather than a
			// worker fault.
			err = &callError{leaseExpired: true, err: err}
		}
		done <- attemptEnd{t: t, w: w, res: res, err: err}
	}()
}

// workerFor picks the worker for one attempt of t: the healthiest (fewest
// consecutive failures) among the idle, non-ejected, non-throttled ones.
// A retry never goes straight back to the worker that just failed it when
// the fleet has an alternative — waiting for a busy healthy worker beats
// burning MaxAttempts against a dead port — and a hedge never lands on
// the worker running the attempt it is meant to outrun. Hedging itself
// trades duplicated work for tail latency: whichever copy answers first
// wins and the loser is cancelled.
func (c *Coordinator) workerFor(t *task, workers []*workerState, now time.Time, hedge bool) *workerState {
	var best *workerState
	for _, w := range workers {
		if !w.eligible(now) {
			continue
		}
		if hedge && w.url == t.lastURL {
			continue
		}
		if !hedge && len(workers) > 1 && w.url == t.lastFailURL {
			continue
		}
		if best == nil || w.consecFails < best.consecFails {
			best = w
		}
	}
	return best
}

// nextWake returns the earliest future instant at which the dispatch
// picture can change without an attempt finishing: a task's backoff
// expiring, a worker's ejection/throttle window closing, or a sole
// in-flight attempt crossing the hedge threshold.
func (c *Coordinator) nextWake(tasks []*task, workers []*workerState, now time.Time) (time.Time, bool) {
	var wake time.Time
	consider := func(at time.Time) {
		if at.After(now) && (wake.IsZero() || at.Before(wake)) {
			wake = at
		}
	}
	for _, t := range tasks {
		if t.done {
			continue
		}
		if t.inflight == 0 {
			consider(t.notBefore)
		}
		if c.cfg.HedgeAfter > 0 && t.inflight == 1 {
			consider(t.launched.Add(c.cfg.HedgeAfter))
		}
	}
	for _, w := range workers {
		if !w.busy {
			consider(w.offlineUntil)
		}
	}
	return wake, !wake.IsZero()
}

// noteFailure applies one failed attempt to worker health and task retry
// state. It returns a non-nil error only when the job as a whole must
// stop: a permanent (non-retryable) response or a task out of attempts.
func (c *Coordinator) noteFailure(ev attemptEnd, kind string, now time.Time) error {
	t, w := ev.t, ev.w
	ce, _ := ev.err.(*callError)

	if ce != nil && ce.status == 429 {
		// Backpressure, not breakage: the worker told us when to come
		// back. Honor the window, try the shard elsewhere immediately,
		// and leave the worker's health record untouched.
		d := ce.retryAfter
		if d <= 0 {
			d = time.Second
		}
		w.offlineUntil = now.Add(d)
		c.reg.Counter("pd_fabric_throttles_total").Inc()
		c.logf("fabric: %s throttled (Retry-After %v), shard %s goes elsewhere", w.url, d, t.label)
		return nil
	}

	if ce != nil && ce.leaseExpired {
		c.reg.Counter("pd_fabric_reassignments_total").Inc()
		c.logf("fabric: lease on %s expired at %s, reassigning", t.label, w.url)
	}

	t.lastFailURL = w.url
	w.consecFails++
	if w.consecFails >= c.cfg.EjectAfter && now.After(w.offlineUntil) {
		// Eject. consecFails stays at the threshold: when the probation
		// window passes the worker is re-admitted, but its next failure
		// re-ejects it instantly — one strike on probation.
		w.offlineUntil = now.Add(c.cfg.Probation)
		c.reg.Counter("pd_fabric_ejections_total").Inc()
		c.logf("fabric: ejecting %s for %v after %d consecutive failures", w.url, c.cfg.Probation, w.consecFails)
	}

	if ce != nil && ce.permanent {
		return fmt.Errorf("fabric: %s rejected by %s as unretryable: %w", t.label, w.url, ev.err)
	}
	t.failures++
	if t.failures >= c.cfg.MaxAttempts {
		return fmt.Errorf("fabric: %s failed %d times, last on %s: %w", t.label, t.failures, w.url, ev.err)
	}
	t.notBefore = now.Add(c.backoff(t.failures))
	c.reg.Counter(`pd_fabric_shard_retries_total{kind="` + kind + `"}`).Inc()
	c.logf("fabric: %s attempt %d failed on %s (%v), retrying after %v", t.label, t.failures, w.url, ev.err, time.Until(t.notBefore).Round(time.Millisecond))
	return nil
}

// backoff returns the wait before attempt n+1: capped exponential growth
// with full jitter on the upper half, so a fleet of retries decorrelates
// instead of thundering back in lockstep.
func (c *Coordinator) backoff(failures int) time.Duration {
	d := c.cfg.BaseBackoff
	for i := 1; i < failures && d < c.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	half := d / 2
	c.rngMu.Lock()
	jit := time.Duration(c.rng.Int63n(int64(half) + 1))
	c.rngMu.Unlock()
	return half + jit
}
