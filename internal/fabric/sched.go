package fabric

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"positdebug/internal/obs"
)

// This file is the fabric's failure-domain core: a single-goroutine event
// loop that assigns tasks (shards) to workers and absorbs every way a
// worker can disappoint — refuse, throttle, hang, crash, lie slowly, or
// walk out mid-attempt. All scheduler state (task and worker structs) is
// owned by the loop; attempt goroutines only perform the HTTP call and
// report back on a channel, so there is no locking and no data race by
// construction. Membership changes arrive as events too: the loop syncs
// its worker table (and the consistent-hash ring over it) from the shared
// Membership roster whenever the roster's version moves.

// task is one dispatchable unit of work — a campaign shard, a golden
// probe, or a profile shard. The scheduler is agnostic to the payload:
// call performs one attempt against one worker, onDone commits the first
// successful result (journal writes run here, on the event loop).
type task struct {
	label string
	// key is the task's kernel identity (workload/source), the consistent-
	// hash ring input: same-kernel tasks walk the same worker order, so
	// they keep landing on workers whose compile caches are already warm.
	key    string
	call   func(ctx context.Context, workerURL string) (any, error)
	onDone func(res any) error

	// Scheduler-owned state.
	failures    int       // failed attempts (429 throttles excluded)
	inflight    int       // outstanding attempts (>1 while hedged)
	launched    time.Time // start of the oldest outstanding attempt
	notBefore   time.Time // backoff gate for the next attempt
	lastURL     string    // worker of the most recent attempt
	lastFailURL string    // worker of the most recent failed attempt
	done        bool
	result      any
	cancels     []context.CancelFunc
}

func (t *task) cancelAll() {
	for _, c := range t.cancels {
		c()
	}
	t.cancels = nil
}

// workerState tracks one worker's health. A worker earns ejection by
// consecutive failures and re-enters on probation when the window passes:
// consecFails is deliberately NOT reset at re-admission, so one more
// failure re-ejects immediately, while one success clears the slate.
// Enough ejections (Config.DeadAfter) upgrade the verdict to dead: the
// worker is removed from the fleet roster entirely and only a fresh
// registration brings it back, with a clean record.
type workerState struct {
	url          string
	busy         bool
	consecFails  int
	ejections    int
	offlineUntil time.Time // ejection or Retry-After throttle window
	lastErr      error     // most recent failure, for the fleet post-mortem
	removed      bool      // left the roster (drain, expiry, eviction, death)
	cancel       context.CancelFunc // in-flight attempt teardown (drain migration)
}

func (w *workerState) eligible(now time.Time) bool {
	return !w.removed && !w.busy && !now.Before(w.offlineUntil)
}

// attemptEnd is one finished attempt, reported by its goroutine.
type attemptEnd struct {
	t   *task
	w   *workerState
	res any
	err error
	at  *attemptTrace // nil unless fleet tracing is on
}

// schedState is the event loop's view of the fleet: the worker table, the
// tombstones of members that failed out (for the post-mortem error), and
// the consistent-hash ring over the live members.
type schedState struct {
	workers []*workerState
	byURL   map[string]*workerState
	gone    map[string]*workerState
	ring    *Ring
	version uint64 // Membership version the table was last synced to
}

func (st *schedState) live() int {
	n := 0
	for _, w := range st.workers {
		if !w.removed {
			n++
		}
	}
	return n
}

// syncMembers reconciles the scheduler's worker table with the shared
// roster: new members get a worker slot and join the ring, departed
// members are tombstoned and their in-flight attempt cancelled so the
// shard migrates immediately (the whole point of the drain announcement —
// no lease expiry wait), and a re-registered member returns with a clean
// health record. The ring is rebuilt over the survivors; consistent
// hashing guarantees only the moved arc changes owner.
func (c *Coordinator) syncMembers(st *schedState, initial bool) {
	st.version = c.members.Version()
	snap := c.members.Snapshot()
	seen := make(map[string]bool, len(snap))
	caps := make(map[string]int, len(snap))
	changed := st.ring == nil
	for _, mem := range snap {
		seen[mem.URL] = true
		caps[mem.URL] = mem.Capacity
		if w, ok := st.byURL[mem.URL]; ok {
			if w.removed {
				// Rejoined after leaving: a fresh process, a fresh record.
				w.removed = false
				w.consecFails, w.ejections = 0, 0
				w.offlineUntil = time.Time{}
				w.lastErr = nil
				delete(st.gone, w.url)
				changed = true
				c.noteMemberEvent("join", w.url, "re-registered", initial)
			}
			continue
		}
		w := &workerState{url: mem.URL}
		st.byURL[mem.URL] = w
		st.workers = append(st.workers, w)
		changed = true
		c.noteMemberEvent("join", w.url, "", initial)
	}
	for _, w := range st.workers {
		if w.removed || seen[w.url] {
			continue
		}
		w.removed = true
		st.gone[w.url] = w
		changed = true
		c.noteMemberEvent("leave", w.url, "", initial)
		if w.cancel != nil {
			// Migrate the lease now: the attempt's context is torn down,
			// its goroutine reports back, and the shard redispatches to a
			// surviving worker without waiting out LeaseTimeout.
			w.cancel()
			c.reg.Counter("pd_fabric_drain_migrations_total").Inc()
			c.logf("fabric: %s left the fleet mid-attempt; migrating its lease", w.url)
		}
	}
	if changed {
		// The ring weights each live member's arc by its advertised
		// capacity, so a beefy worker absorbs proportionally more kernels.
		liveCaps := make(map[string]int, len(st.workers))
		for _, w := range st.workers {
			if !w.removed {
				liveCaps[w.url] = caps[w.url]
			}
		}
		st.ring = NewWeightedRing(liveCaps, c.cfg.VirtualNodes)
		if !initial {
			c.reg.Counter("pd_fabric_ring_rebalances_total").Inc()
		}
		c.reg.Gauge("pd_fabric_members").Set(int64(len(liveCaps)))
	}
}

// noteMemberEvent logs and (when a journal is attached) write-ahead-logs
// one membership event. The initial roster is not an event — only churn
// observed during the job lands in the journal's forensic record.
func (c *Coordinator) noteMemberEvent(event, url, reason string, initial bool) {
	// The trace and live event stream see the initial roster too — a fleet
	// trace without its members would start in the dark. Only the journal
	// restricts itself to churn observed during the job.
	kind := obs.EvMemberJoin
	if event == "leave" {
		kind = obs.EvMemberLeave
	}
	c.fleetEvent(kind, "", url, reason, "", 0)
	if initial {
		return
	}
	c.logf("fabric: member %s: %s %s", event, url, reason)
	if c.cfg.Journal != nil {
		// Best-effort: a failed membership note must not fail the job —
		// it records fleet history, not results.
		_ = c.cfg.Journal.RecordMember(event, url, reason)
	}
}

// fleetFailures renders the tombstones' last per-worker failures for the
// all-workers-dead post-mortem.
func fleetFailures(gone map[string]*workerState) string {
	urls := make([]string, 0, len(gone))
	for u := range gone {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	parts := make([]string, 0, len(urls))
	for _, u := range urls {
		if err := gone[u].lastErr; err != nil {
			parts = append(parts, fmt.Sprintf("%s: %v", u, err))
		} else {
			parts = append(parts, u+": left the fleet")
		}
	}
	return strings.Join(parts, "; ")
}

// runTasks drives every task to completion (or the job to failure) across
// the fleet. It returns nil only when every task has a committed result.
func (c *Coordinator) runTasks(ctx context.Context, kind string, tasks []*task) error {
	st := &schedState{
		byURL: make(map[string]*workerState),
		gone:  make(map[string]*workerState),
	}
	c.syncMembers(st, true)
	c.logf("fabric: scheduling %d %s tasks over %d workers (jitter seed %d)", len(tasks), kind, st.live(), c.seed)
	c.trace.beginJob(kind)
	defer c.trace.endJob()
	c.cfg.Progress.Start(kind, len(tasks))
	defer c.cfg.Progress.Finish()

	// Buffered so in-flight attempts can always report, even after an
	// early return: at most two attempts (original + hedge) per task.
	done := make(chan attemptEnd, 2*len(tasks)+1)
	notify := c.members.Notify()

	remaining := 0
	for _, t := range tasks {
		if !t.done {
			remaining++
		}
	}
	outstanding := 0

	fail := func(err error) error {
		for _, t := range tasks {
			t.cancelAll()
		}
		return err
	}

	for remaining > 0 {
		if c.members.Version() != st.version {
			c.syncMembers(st, false)
		}
		now := time.Now()

		// Dispatch: fresh work first, then hedges for stragglers.
		for _, t := range tasks {
			if t.done || t.inflight != 0 || now.Before(t.notBefore) {
				continue
			}
			w := c.workerFor(t, st, now, false)
			if w == nil {
				continue
			}
			c.launch(ctx, t, w, done)
			outstanding++
		}
		if c.cfg.HedgeAfter > 0 {
			for _, t := range tasks {
				if t.done || t.inflight != 1 || now.Sub(t.launched) < c.cfg.HedgeAfter {
					continue
				}
				w := c.workerFor(t, st, now, true)
				if w == nil {
					continue
				}
				c.reg.Counter(`pd_fabric_hedges_total{kind="` + kind + `"}`).Inc()
				c.logf("fabric: hedging %s on %s (first attempt %v old)", t.label, w.url, now.Sub(t.launched).Round(time.Millisecond))
				c.launch(ctx, t, w, done)
				outstanding++
			}
		}

		// A fleet with no live members and no attempts left to drain
		// cannot make progress. If members failed their way out, that is
		// the job's post-mortem — fail fast with each worker's last
		// failure instead of idling until the campaign deadline. If the
		// fleet simply hasn't assembled yet (discovery mode), wait for a
		// registration to wake the loop.
		if outstanding == 0 && st.live() == 0 && len(st.gone) > 0 {
			return fail(fmt.Errorf("fabric: all %d workers failed and left the fleet with %d tasks unfinished: %s",
				len(st.gone), remaining, fleetFailures(st.gone)))
		}

		// Wait for an attempt to finish, a backoff/ejection/hedge deadline
		// to pass, the fleet to change, or the whole job to be cancelled.
		var timerC <-chan time.Time
		var timer *time.Timer
		if wake, ok := c.nextWake(tasks, st.workers, now); ok {
			d := time.Until(wake)
			if d < time.Millisecond {
				d = time.Millisecond
			}
			timer = time.NewTimer(d)
			timerC = timer.C
		} else if outstanding == 0 && st.live() > 0 {
			// Live workers, no attempts in flight and nothing scheduled to
			// become runnable: the loop would block forever. Cannot happen
			// (ejections and backoffs are finite), but fail loudly rather
			// than hang if the invariant breaks.
			return fail(fmt.Errorf("fabric: scheduler stalled with %d tasks remaining", remaining))
		}

		select {
		case <-ctx.Done():
			if timer != nil {
				timer.Stop()
			}
			return fail(context.Cause(ctx))
		case <-notify:
			if timer != nil {
				timer.Stop()
			}
			continue // sync at the top of the loop
		case <-timerC:
			continue
		case ev := <-done:
			if timer != nil {
				timer.Stop()
			}
			outstanding--
			ev.w.busy = false
			ev.w.cancel = nil
			ev.t.inflight--
			// Close the attempt span and file the fetched worker batch —
			// winners, losers and failures all land in the fleet trace.
			ev.at.finish()
			if ev.t.done {
				// A hedge mate already won. A loser's error is expected
				// (we cancelled it) and says nothing about worker health;
				// a second success still clears the worker's record.
				if ev.err == nil {
					ev.w.consecFails = 0
				}
				continue
			}
			if ev.err == nil {
				ev.w.consecFails = 0
				ev.t.done = true
				ev.t.result = ev.res
				ev.t.cancelAll()
				remaining--
				c.reg.Counter(`pd_fabric_shards_total{kind="` + kind + `"}`).Inc()
				c.cfg.Progress.ShardDone()
				c.fleetEvent(obs.EvShardDone, ev.t.label, ev.w.url, "", ev.at.id(), 0)
				if n := detectionCount(ev.res); n > 0 {
					c.fleetEvent(obs.EvDetectionFound, ev.t.label, ev.w.url, "", ev.at.id(), n)
				}
				if ev.t.onDone != nil {
					if err := ev.t.onDone(ev.res); err != nil {
						return fail(fmt.Errorf("fabric: committing %s: %w", ev.t.label, err))
					}
				}
				continue
			}
			if ev.w.removed {
				// Departure migration, not a fault: the worker left the
				// fleet while this attempt ran. Neither the task's attempt
				// budget nor anyone's health record pays for it — the
				// shard simply redispatches to a surviving worker.
				c.reg.Counter("pd_fabric_reassignments_total").Inc()
				c.fleetEvent(obs.EvLeaseMigrate, ev.t.label, ev.w.url, "departed", ev.at.id(), 0)
				c.logf("fabric: %s migrated off departed %s", ev.t.label, ev.w.url)
				continue
			}
			if err := c.noteFailure(ev, kind, time.Now()); err != nil {
				return fail(err)
			}
		}
	}
	return nil
}

// launch starts one attempt of t on w under a lease: a per-attempt
// deadline after which the coordinator stops waiting and reassigns the
// shard, whatever the worker is (or isn't) doing.
func (c *Coordinator) launch(ctx context.Context, t *task, w *workerState, done chan<- attemptEnd) {
	// Classify the dispatch before mutating attempt state: a second
	// in-flight attempt is a hedge, a first attempt after failures a retry.
	outcome := "fresh"
	switch {
	case t.inflight > 0:
		outcome = "hedge"
	case t.failures > 0:
		outcome = "retry"
	}
	at := c.trace.beginAttempt(t.label, w.url)
	c.fleetEvent(obs.EvShardDispatch, t.label, w.url, outcome, at.id(), 0)
	actx, cancel := context.WithTimeout(ctx, c.cfg.LeaseTimeout)
	actx = withAttempt(actx, at)
	t.cancels = append(t.cancels, cancel)
	w.busy = true
	w.cancel = cancel
	t.lastURL = w.url
	t.inflight++
	if t.inflight == 1 {
		t.launched = time.Now()
	}
	go func() {
		defer cancel()
		res, err := t.call(actx, w.url)
		if err != nil && actx.Err() != nil && ctx.Err() == nil {
			// The lease expired (or the attempt was torn down — a hedge
			// mate won, or the worker left the fleet), not the job: mark
			// it so the loop reports a reassignment, not a worker fault.
			err = &callError{leaseExpired: true, err: err}
		}
		done <- attemptEnd{t: t, w: w, res: res, err: err, at: at}
		// Only after reporting: collect the worker's span batch while the
		// attempt is still warm in its trace store. Off the shard critical
		// path — the scheduler dispatches the next shard without waiting
		// for this best-effort, short-deadline fetch.
		at.collect(c.client)
	}()
}

// workerFor picks the worker for one attempt of t by walking the
// consistent-hash ring from the task's kernel key: the arc owner first —
// its compile cache is the one this kernel warmed — then each fallback in
// ring order, which keeps even the second choice sticky per kernel. The
// robustness rules layer on top of the walk: ejected, throttled, removed
// and busy workers are skipped; a retry never goes straight back to the
// worker that just failed it when the fleet has an alternative — waiting
// for a busy healthy worker beats burning MaxAttempts against a dead
// port — and a hedge never lands on the worker running the attempt it is
// meant to outrun.
func (c *Coordinator) workerFor(t *task, st *schedState, now time.Time, hedge bool) *workerState {
	order := st.ring.Order(t.key)
	avoid := ""
	if hedge {
		avoid = t.lastURL
	} else if len(order) > 1 {
		avoid = t.lastFailURL
	}
	for i, url := range order {
		w := st.byURL[url]
		if w == nil || !w.eligible(now) || url == avoid {
			continue
		}
		if i == 0 {
			c.reg.Counter("pd_fabric_ring_affinity_hits_total").Inc()
		} else {
			c.reg.Counter("pd_fabric_ring_fallbacks_total").Inc()
		}
		return w
	}
	return nil
}

// nextWake returns the earliest future instant at which the dispatch
// picture can change without an attempt finishing or the fleet changing:
// a task's backoff expiring, a worker's ejection/throttle window closing,
// or a sole in-flight attempt crossing the hedge threshold.
func (c *Coordinator) nextWake(tasks []*task, workers []*workerState, now time.Time) (time.Time, bool) {
	var wake time.Time
	consider := func(at time.Time) {
		if at.After(now) && (wake.IsZero() || at.Before(wake)) {
			wake = at
		}
	}
	for _, t := range tasks {
		if t.done {
			continue
		}
		if t.inflight == 0 {
			consider(t.notBefore)
		}
		if c.cfg.HedgeAfter > 0 && t.inflight == 1 {
			consider(t.launched.Add(c.cfg.HedgeAfter))
		}
	}
	for _, w := range workers {
		if !w.busy && !w.removed {
			consider(w.offlineUntil)
		}
	}
	return wake, !wake.IsZero()
}

// noteFailure applies one failed attempt to worker health and task retry
// state. It returns a non-nil error only when the job as a whole must
// stop: a permanent (non-retryable) response or a task out of attempts.
func (c *Coordinator) noteFailure(ev attemptEnd, kind string, now time.Time) error {
	t, w := ev.t, ev.w
	ce, _ := ev.err.(*callError)

	if ce != nil && ce.status == 429 {
		// Backpressure, not breakage: the worker told us when to come
		// back. Honor the window, try the shard elsewhere immediately,
		// and leave the worker's health record untouched.
		d := ce.retryAfter
		if d <= 0 {
			d = time.Second
		}
		w.offlineUntil = now.Add(d)
		c.reg.Counter("pd_fabric_throttles_total").Inc()
		c.fleetEvent(obs.EvShardRetry, t.label, w.url, "throttled", ev.at.id(), 0)
		c.logf("fabric: %s throttled (Retry-After %v), shard %s goes elsewhere", w.url, d, t.label)
		return nil
	}

	if ce != nil && ce.leaseExpired {
		c.reg.Counter("pd_fabric_reassignments_total").Inc()
		c.fleetEvent(obs.EvLeaseMigrate, t.label, w.url, "lease-expired", ev.at.id(), 0)
		c.logf("fabric: lease on %s expired at %s, reassigning", t.label, w.url)
	}

	t.lastFailURL = w.url
	w.consecFails++
	w.lastErr = ev.err
	if w.consecFails >= c.cfg.EjectAfter && now.After(w.offlineUntil) {
		// Eject. consecFails stays at the threshold: when the probation
		// window passes the worker is re-admitted, but its next failure
		// re-ejects it instantly — one strike on probation.
		w.offlineUntil = now.Add(c.cfg.Probation)
		w.ejections++
		c.reg.Counter("pd_fabric_ejections_total").Inc()
		c.logf("fabric: ejecting %s for %v after %d consecutive failures", w.url, c.cfg.Probation, w.consecFails)
		if c.cfg.DeadAfter > 0 && w.ejections >= c.cfg.DeadAfter {
			// Probation has been tried and failed DeadAfter times over:
			// declare the worker dead and strike it from the roster. The
			// membership notify wakes the loop, which tombstones it; only
			// a fresh registration brings it back.
			c.reg.Counter("pd_fabric_member_deaths_total").Inc()
			c.fleetEvent(obs.EvMemberDead, "", w.url, fmt.Sprintf("%d ejections", w.ejections), "", 0)
			c.logf("fabric: declaring %s dead after %d ejections (last error: %v)", w.url, w.ejections, ev.err)
			c.members.Leave(w.url, fmt.Sprintf("declared dead after %d ejections (last error: %v)", w.ejections, ev.err))
		}
	}

	if ce != nil && ce.permanent {
		return fmt.Errorf("fabric: %s rejected by %s as unretryable: %w", t.label, w.url, ev.err)
	}
	t.failures++
	if t.failures >= c.cfg.MaxAttempts {
		return fmt.Errorf("fabric: %s failed %d times, last on %s: %w", t.label, t.failures, w.url, ev.err)
	}
	t.notBefore = now.Add(c.backoff(t.failures))
	c.reg.Counter(`pd_fabric_shard_retries_total{kind="` + kind + `"}`).Inc()
	retryWhy := "transport"
	if ce != nil && ce.status != 0 {
		retryWhy = fmt.Sprintf("http-%d", ce.status)
	}
	c.fleetEvent(obs.EvShardRetry, t.label, w.url, retryWhy, ev.at.id(), 0)
	c.logf("fabric: %s attempt %d failed on %s (%v), retrying after %v", t.label, t.failures, w.url, ev.err, time.Until(t.notBefore).Round(time.Millisecond))
	return nil
}

// backoff returns the wait before attempt n+1: capped exponential growth
// with full jitter on the upper half, so a fleet of retries decorrelates
// instead of thundering back in lockstep. The jitter stream is seeded
// (Config.JitterSeed): replaying a job with the same seed replays the
// same backoff schedule, which is what makes a chaos-harness failure
// reproducible.
func (c *Coordinator) backoff(failures int) time.Duration {
	d := c.cfg.BaseBackoff
	for i := 1; i < failures && d < c.cfg.MaxBackoff; i++ {
		d *= 2
	}
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	half := d / 2
	c.rngMu.Lock()
	jit := time.Duration(c.rng.Int63n(int64(half) + 1))
	c.rngMu.Unlock()
	return half + jit
}
