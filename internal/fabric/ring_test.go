package fabric

import (
	"fmt"
	"reflect"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("polybench/kernel-%d|8|posit", i)
	}
	return keys
}

// TestRingMinimalMovement is the consistent-hashing contract: removing one
// member may move only the keys that member owned; adding one may move
// only keys onto the newcomer. Everything else keeps its warm worker.
func TestRingMinimalMovement(t *testing.T) {
	workers := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	keys := ringKeys(300)
	full := NewRing(workers, 0)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = full.Owner(k)
	}

	// Remove d: only d's keys may change owner.
	smaller := NewRing(workers[:3], 0)
	moved := 0
	for _, k := range keys {
		after := smaller.Owner(k)
		if before[k] != "http://d:4" {
			if after != before[k] {
				t.Fatalf("key %q moved from %s to %s though its owner stayed in the ring", k, before[k], after)
			}
		} else {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys were owned by the removed member; test has no power")
	}

	// Add e: keys either stay put or move onto e, never between survivors.
	bigger := NewRing(append(append([]string{}, workers...), "http://e:5"), 0)
	movedToE := 0
	for _, k := range keys {
		after := bigger.Owner(k)
		if after == before[k] {
			continue
		}
		if after != "http://e:5" {
			t.Fatalf("adding a member moved key %q from %s to %s (not the newcomer)", k, before[k], after)
		}
		movedToE++
	}
	if movedToE == 0 {
		t.Fatal("the new member took no keys; test has no power")
	}
	// With 5 members the newcomer should take roughly 1/5 of the keyspace.
	if frac := float64(movedToE) / float64(len(keys)); frac > 0.45 {
		t.Fatalf("newcomer took %.0f%% of keys; vnode spread is badly skewed", frac*100)
	}
}

// TestRingOrderDeterministic: Order lists every member exactly once,
// starting at the key's owner, identically across rebuilds — the fallback
// worker for a kernel is as sticky as its first choice.
func TestRingOrderDeterministic(t *testing.T) {
	workers := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1 := NewRing(workers, 0)
	r2 := NewRing([]string{"http://c:3", "http://a:1", "http://b:2"}, 0) // order-independent
	for _, k := range ringKeys(50) {
		o1, o2 := r1.Order(k), r2.Order(k)
		if !reflect.DeepEqual(o1, o2) {
			t.Fatalf("Order(%q) differs across identically-membered rings: %v vs %v", k, o1, o2)
		}
		if len(o1) != len(workers) {
			t.Fatalf("Order(%q) = %v, want all %d members", k, o1, len(workers))
		}
		if o1[0] != r1.Owner(k) {
			t.Fatalf("Order(%q) starts at %s, Owner is %s", k, o1[0], r1.Owner(k))
		}
		seen := map[string]bool{}
		for _, u := range o1 {
			if seen[u] {
				t.Fatalf("Order(%q) repeats %s", k, u)
			}
			seen[u] = true
		}
	}
}

// TestRingBalance: with DefaultVirtualNodes the per-member load for a
// uniform keyspace stays within a sane band of fair share.
func TestRingBalance(t *testing.T) {
	workers := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r := NewRing(workers, 0)
	counts := map[string]int{}
	keys := ringKeys(2000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := len(keys) / len(workers)
	for _, w := range workers {
		if c := counts[w]; c < fair/3 || c > fair*3 {
			t.Fatalf("member %s owns %d of %d keys (fair share %d); distribution badly skewed: %v", w, c, len(keys), fair, counts)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	empty := NewRing(nil, 0)
	if got := empty.Owner("k"); got != "" {
		t.Fatalf("empty ring Owner = %q, want empty", got)
	}
	if got := empty.Order("k"); got != nil {
		t.Fatalf("empty ring Order = %v, want nil", got)
	}
	dup := NewRing([]string{"http://a:1", "http://a:1", "", "http://a:1"}, 0)
	if dup.Len() != 1 {
		t.Fatalf("duplicate/empty URLs not collapsed: %v", dup.Members())
	}
	if got := dup.Owner("anything"); got != "http://a:1" {
		t.Fatalf("single-member ring Owner = %q", got)
	}
}
