package fabric

import (
	"fmt"
	"reflect"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("polybench/kernel-%d|8|posit", i)
	}
	return keys
}

// TestRingMinimalMovement is the consistent-hashing contract: removing one
// member may move only the keys that member owned; adding one may move
// only keys onto the newcomer. Everything else keeps its warm worker.
func TestRingMinimalMovement(t *testing.T) {
	workers := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	keys := ringKeys(300)
	full := NewRing(workers, 0)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = full.Owner(k)
	}

	// Remove d: only d's keys may change owner.
	smaller := NewRing(workers[:3], 0)
	moved := 0
	for _, k := range keys {
		after := smaller.Owner(k)
		if before[k] != "http://d:4" {
			if after != before[k] {
				t.Fatalf("key %q moved from %s to %s though its owner stayed in the ring", k, before[k], after)
			}
		} else {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys were owned by the removed member; test has no power")
	}

	// Add e: keys either stay put or move onto e, never between survivors.
	bigger := NewRing(append(append([]string{}, workers...), "http://e:5"), 0)
	movedToE := 0
	for _, k := range keys {
		after := bigger.Owner(k)
		if after == before[k] {
			continue
		}
		if after != "http://e:5" {
			t.Fatalf("adding a member moved key %q from %s to %s (not the newcomer)", k, before[k], after)
		}
		movedToE++
	}
	if movedToE == 0 {
		t.Fatal("the new member took no keys; test has no power")
	}
	// With 5 members the newcomer should take roughly 1/5 of the keyspace.
	if frac := float64(movedToE) / float64(len(keys)); frac > 0.45 {
		t.Fatalf("newcomer took %.0f%% of keys; vnode spread is badly skewed", frac*100)
	}
}

// TestRingOrderDeterministic: Order lists every member exactly once,
// starting at the key's owner, identically across rebuilds — the fallback
// worker for a kernel is as sticky as its first choice.
func TestRingOrderDeterministic(t *testing.T) {
	workers := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1 := NewRing(workers, 0)
	r2 := NewRing([]string{"http://c:3", "http://a:1", "http://b:2"}, 0) // order-independent
	for _, k := range ringKeys(50) {
		o1, o2 := r1.Order(k), r2.Order(k)
		if !reflect.DeepEqual(o1, o2) {
			t.Fatalf("Order(%q) differs across identically-membered rings: %v vs %v", k, o1, o2)
		}
		if len(o1) != len(workers) {
			t.Fatalf("Order(%q) = %v, want all %d members", k, o1, len(workers))
		}
		if o1[0] != r1.Owner(k) {
			t.Fatalf("Order(%q) starts at %s, Owner is %s", k, o1[0], r1.Owner(k))
		}
		seen := map[string]bool{}
		for _, u := range o1 {
			if seen[u] {
				t.Fatalf("Order(%q) repeats %s", k, u)
			}
			seen[u] = true
		}
	}
}

// TestRingBalance: with DefaultVirtualNodes the per-member load for a
// uniform keyspace stays within a sane band of fair share.
func TestRingBalance(t *testing.T) {
	workers := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r := NewRing(workers, 0)
	counts := map[string]int{}
	keys := ringKeys(2000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	fair := len(keys) / len(workers)
	for _, w := range workers {
		if c := counts[w]; c < fair/3 || c > fair*3 {
			t.Fatalf("member %s owns %d of %d keys (fair share %d); distribution badly skewed: %v", w, c, len(keys), fair, counts)
		}
	}
}

// TestWeightedRingCapacityProportional: arc share tracks advertised
// capacity, unadvertised capacity weighs like 1, and absurd
// advertisements clamp at MaxRingWeight.
func TestWeightedRingCapacityProportional(t *testing.T) {
	keys := ringKeys(4000)
	r := NewWeightedRing(map[string]int{"http://big:1": 4, "http://small:2": 1}, 0)
	counts := map[string]int{}
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	frac := float64(counts["http://big:1"]) / float64(len(keys))
	if frac < 0.65 || frac > 0.95 {
		t.Fatalf("capacity-4 member owns %.0f%% of keys next to a capacity-1 member; want ~80%%", frac*100)
	}

	// Capacity 0 (never advertised) weighs exactly 1: owners match the
	// unweighted ring for every key.
	workers := []string{"http://a:1", "http://b:2", "http://c:3"}
	unweighted := NewRing(workers, 0)
	zero := NewWeightedRing(map[string]int{"http://a:1": 0, "http://b:2": 0, "http://c:3": 0}, 0)
	for _, k := range keys[:500] {
		if unweighted.Owner(k) != zero.Owner(k) {
			t.Fatalf("zero-capacity weighted ring disagrees with unweighted ring on %q", k)
		}
	}

	// A runaway advertisement clamps: 1<<20 weighs the same as MaxRingWeight.
	clamped := NewWeightedRing(map[string]int{"http://big:1": 1 << 20, "http://small:2": 1}, 0)
	max := NewWeightedRing(map[string]int{"http://big:1": MaxRingWeight, "http://small:2": 1}, 0)
	for _, k := range keys[:500] {
		if clamped.Owner(k) != max.Owner(k) {
			t.Fatalf("clamping failed: weight 1<<20 and %d disagree on %q", MaxRingWeight, k)
		}
	}
}

// TestWeightedRingMinimalMovement: re-weighting one member moves keys
// only to or from that member — bystanders keep their warm workers, the
// same contract membership changes honor.
func TestWeightedRingMinimalMovement(t *testing.T) {
	keys := ringKeys(1000)
	caps := map[string]int{"http://a:1": 1, "http://b:2": 1, "http://c:3": 1}
	before := NewWeightedRing(caps, 0)
	owners := make(map[string]string, len(keys))
	for _, k := range keys {
		owners[k] = before.Owner(k)
	}

	// Raise a's weight: every moved key must land on a.
	caps["http://a:1"] = 3
	grown := NewWeightedRing(caps, 0)
	movedToA := 0
	for _, k := range keys {
		after := grown.Owner(k)
		if after == owners[k] {
			continue
		}
		if after != "http://a:1" {
			t.Fatalf("raising a's weight moved key %q from %s to %s (not a)", k, owners[k], after)
		}
		movedToA++
	}
	if movedToA == 0 {
		t.Fatal("tripling a member's weight moved no keys; test has no power")
	}

	// Lower it back: the ring must return to the exact original ownership.
	caps["http://a:1"] = 1
	shrunk := NewWeightedRing(caps, 0)
	for _, k := range keys {
		if shrunk.Owner(k) != owners[k] {
			t.Fatalf("restoring a's weight did not restore ownership of %q", k)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	empty := NewRing(nil, 0)
	if got := empty.Owner("k"); got != "" {
		t.Fatalf("empty ring Owner = %q, want empty", got)
	}
	if got := empty.Order("k"); got != nil {
		t.Fatalf("empty ring Order = %v, want nil", got)
	}
	dup := NewRing([]string{"http://a:1", "http://a:1", "", "http://a:1"}, 0)
	if dup.Len() != 1 {
		t.Fatalf("duplicate/empty URLs not collapsed: %v", dup.Members())
	}
	if got := dup.Owner("anything"); got != "http://a:1" {
		t.Fatalf("single-member ring Owner = %q", got)
	}
}
