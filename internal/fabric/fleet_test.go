package fabric

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"positdebug/internal/obs"
)

func TestProgressStatus(t *testing.T) {
	var p *Progress
	if st := p.Status(); st.Running || st.TotalShards != 0 {
		t.Fatalf("nil progress status = %+v", st)
	}

	p = NewProgress()
	p.Start("campaign", 8)
	now := time.Now()
	p.mu.Lock()
	p.started = now.Add(-10 * time.Second)
	p.mu.Unlock()
	for i := 0; i < 2; i++ {
		p.ShardDone()
	}
	st := p.statusAt(now)
	if st.Kind != "campaign" || st.TotalShards != 8 || st.DoneShards != 2 || !st.Running {
		t.Fatalf("status = %+v", st)
	}
	if st.Completion != 0.25 {
		t.Fatalf("completion = %v, want 0.25", st.Completion)
	}
	// 2 shards in 10s => 0.2/s => 6 remaining take 30s.
	if st.ShardsPerSec < 0.19 || st.ShardsPerSec > 0.21 {
		t.Fatalf("shards/sec = %v, want ~0.2", st.ShardsPerSec)
	}
	if st.ETASeconds < 29 || st.ETASeconds > 31 {
		t.Fatalf("eta = %v, want ~30", st.ETASeconds)
	}
	p.Finish()
	if st := p.statusAt(now); st.Running || st.ETASeconds != 0 {
		t.Fatalf("finished status still running or estimating: %+v", st)
	}
}

func TestBusPublishSubscribe(t *testing.T) {
	var nilBus *Bus
	nilBus.Publish(obs.NewEvent(obs.EvShardDone)) // must not panic

	b := NewBus()
	ch, cancel := b.Subscribe(2)
	defer cancel()
	for i := 0; i < 5; i++ {
		ev := obs.NewEvent(obs.EvShardDispatch)
		ev.Count = i
		b.Publish(ev)
	}
	// Buffer 2: first two delivered, three dropped without blocking.
	if got := len(ch); got != 2 {
		t.Fatalf("delivered %d events, want 2", got)
	}
	if b.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", b.Dropped())
	}
	first := <-ch
	if first.Kind != obs.EvShardDispatch || first.Count != 0 {
		t.Fatalf("first event = %+v", first)
	}
	cancel()
	cancel() // double-cancel must be safe
	<-ch     // drain the second buffered event
	if _, ok := <-ch; ok {
		t.Fatal("channel still open after cancel")
	}
	b.Publish(obs.NewEvent(obs.EvShardDone)) // no subscribers left: no-op
}

// TestFleetStatusShape is the golden test for the GET /fleet/status JSON:
// volatile fields (heartbeat age) are zeroed, everything else must match
// byte for byte so dashboards can rely on the schema.
func TestFleetStatusShape(t *testing.T) {
	members := NewMembership()
	reg := obs.NewRegistry()
	members.setMetrics(reg) // the Registrar attaches this in production
	if _, err := members.Join(Member{
		URL: "http://w1:8731", Capacity: 4, Oracle: "bigfp", Backend: "tree",
		Stats: &obs.WorkerStats{
			QueueDepth: 2, InFlight: 1, ShadowTier: "bigfp-128",
			CacheHits: 30, CacheMisses: 10, Detections: 7, Shards: 5,
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := members.JoinStatic("http://w2:8732"); err != nil {
		t.Fatal(err)
	}
	prog := NewProgress()
	prog.Start("campaign", 4)
	prog.ShardDone()
	h := NewFleetHandler(members, prog, NewBus(), reg)

	ts := httptest.NewServer(h.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/fleet/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var st FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}

	// Zero the volatile fields, then compare the whole shape as JSON.
	for i := range st.Workers {
		st.Workers[i].LastBeatAgoMS = 0
	}
	st.Progress.ShardsPerSec = 0
	st.Progress.ETASeconds = 0
	got, err := json.MarshalIndent(st, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	want := strings.TrimSpace(`
{
 "members": 2,
 "workers": [
  {
   "url": "http://w1:8731",
   "oracle": "bigfp",
   "backend": "tree",
   "capacity": 4,
   "last_beat_ago_ms": 0,
   "stats": {
    "queue_depth": 2,
    "inflight": 1,
    "shadow_tier": "bigfp-128",
    "cache_hits": 30,
    "cache_misses": 10,
    "detections": 7,
    "shards": 5
   }
  },
  {
   "url": "http://w2:8732",
   "static": true,
   "last_beat_ago_ms": 0
  }
 ],
 "progress": {
  "kind": "campaign",
  "total_shards": 4,
  "done_shards": 1,
  "completion": 0.25,
  "running": true
 }
}`)
	if string(got) != want {
		t.Fatalf("fleet status shape drifted:\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The same snapshot must have refreshed the pd_fleet_* gauges.
	var prom bytes.Buffer
	if err := reg.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"pd_fleet_workers 2",
		"pd_fleet_done_shards 1",
		"pd_fleet_total_shards 4",
		"pd_fleet_completion_permille 250",
		`pd_fleet_worker_queue_depth{worker="http://w1:8731"} 2`,
		`pd_fleet_worker_cache_hit_permille{worker="http://w1:8731"} 750`,
		`pd_fleet_worker_detections{worker="http://w1:8731"} 7`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prom dump missing %q", want)
		}
	}
}

func TestFleetEventsSSE(t *testing.T) {
	bus := NewBus()
	h := NewFleetHandler(NewMembership(), NewProgress(), bus, obs.NewRegistry())
	ts := httptest.NewServer(h.Handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/fleet/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	// The subscription is established by the handler goroutine; publish
	// until the reader sees our event (Publish before Subscribe is lost by
	// design, so a single fire could race the handler's setup).
	done := make(chan obs.Event, 1)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev obs.Event
			if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev) == nil {
				done <- ev
				return
			}
		}
	}()
	ev := obs.NewEvent(obs.EvShardDispatch)
	ev.Name, ev.Addr, ev.Outcome, ev.Req = "gemm[0,4)", "http://w1:1", "fresh", "c000001"
	for {
		bus.Publish(ev)
		select {
		case got := <-done:
			if got.Kind != obs.EvShardDispatch || got.Name != "gemm[0,4)" || got.Outcome != "fresh" {
				t.Fatalf("streamed event = %+v", got)
			}
			return
		case <-time.After(10 * time.Millisecond):
		case <-ctx.Done():
			t.Fatal("no SSE event before deadline")
		}
	}
}
