// Package bigfp provides a fixed-precision, correctly rounded real type on
// top of math/big.Float — the stand-in for the MPFR library that PositDebug
// uses for its high-precision shadow execution. A Context fixes the mantissa
// precision (the paper evaluates 128, 256 and 512 bits) and every operation
// rounds once to that precision with round-to-nearest-even, matching MPFR's
// default behaviour.
package bigfp

import (
	"math/big"

	"positdebug/internal/posit"
)

// Context carries the shadow-execution precision. The zero value is not
// usable; construct with New.
type Context struct {
	prec uint
}

// New returns a context with the given mantissa precision in bits.
// PositDebug's default is 256.
func New(prec uint) Context {
	if prec == 0 {
		prec = 256
	}
	return Context{prec: prec}
}

// Prec returns the mantissa precision of the context.
func (c Context) Prec() uint { return c.prec }

// NewFloat returns a zero-valued big.Float configured for the context.
// Shadow-execution metadata preallocates these and computes in place.
func (c Context) NewFloat() *big.Float {
	return new(big.Float).SetPrec(c.prec).SetMode(big.ToNearestEven)
}

// SetFloat64 sets z to the exact value of f (or to a quiet marker for NaN;
// big.Float has no NaN, so callers must guard with IsNaN upstream).
func (c Context) SetFloat64(z *big.Float, f float64) *big.Float {
	return z.SetPrec(c.prec).SetMode(big.ToNearestEven).SetFloat64(f)
}

// SetPosit sets z to the exact value of the posit p in configuration pc.
// Exact because every n ≤ 32 posit is a normal float64.
func (c Context) SetPosit(z *big.Float, pc posit.Config, p posit.Bits) *big.Float {
	if pc.IsNaR(p) {
		// Callers handle NaR before reaching the shadow value; represent
		// it as zero to keep the big.Float machinery total.
		return z.SetPrec(c.prec).SetInt64(0)
	}
	return c.SetFloat64(z, pc.ToFloat64(p))
}

// Add sets z = x + y rounded to the context precision.
func (c Context) Add(z, x, y *big.Float) *big.Float {
	return z.SetPrec(c.prec).SetMode(big.ToNearestEven).Add(x, y)
}

// Sub sets z = x − y rounded to the context precision.
func (c Context) Sub(z, x, y *big.Float) *big.Float {
	return z.SetPrec(c.prec).SetMode(big.ToNearestEven).Sub(x, y)
}

// Mul sets z = x · y rounded to the context precision.
func (c Context) Mul(z, x, y *big.Float) *big.Float {
	return z.SetPrec(c.prec).SetMode(big.ToNearestEven).Mul(x, y)
}

// Div sets z = x / y rounded to the context precision. Division by zero
// reports undefined=true and leaves z zero (the shadow runtime mirrors the
// program's NaR/Inf handling at a higher level).
func (c Context) Div(z, x, y *big.Float) (res *big.Float, undefined bool) {
	if y.Sign() == 0 {
		return z.SetPrec(c.prec).SetInt64(0), true
	}
	return z.SetPrec(c.prec).SetMode(big.ToNearestEven).Quo(x, y), false
}

// Sqrt sets z = √x rounded to the context precision. Negative x reports
// undefined=true.
func (c Context) Sqrt(z, x *big.Float) (res *big.Float, undefined bool) {
	if x.Sign() < 0 {
		return z.SetPrec(c.prec).SetInt64(0), true
	}
	return z.SetPrec(c.prec).SetMode(big.ToNearestEven).Sqrt(x), false
}

// Neg sets z = −x.
func (c Context) Neg(z, x *big.Float) *big.Float {
	return z.SetPrec(c.prec).SetMode(big.ToNearestEven).Neg(x)
}

// Abs sets z = |x|.
func (c Context) Abs(z, x *big.Float) *big.Float {
	return z.SetPrec(c.prec).SetMode(big.ToNearestEven).Abs(x)
}

// Copy sets z to x at the context precision.
func (c Context) Copy(z, x *big.Float) *big.Float {
	return z.SetPrec(c.prec).SetMode(big.ToNearestEven).Set(x)
}

// ToFloat64 rounds x to the nearest float64.
func ToFloat64(x *big.Float) float64 {
	f, _ := x.Float64()
	return f
}

// Exp2 returns the binary exponent e such that |x| ∈ [2^e, 2^(e+1)), i.e.
// floor(log2|x|). Returns 0 for zero (callers guard on sign).
func Exp2(x *big.Float) int {
	if x.Sign() == 0 {
		return 0
	}
	// big.Float's MantExp returns exp with mantissa in [0.5, 1).
	return x.MantExp(nil) - 1
}
