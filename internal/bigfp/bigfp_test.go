package bigfp

import (
	"math"
	"math/big"
	"testing"

	"positdebug/internal/posit"
)

func TestPrecisionIsEnforced(t *testing.T) {
	c := New(128)
	if c.Prec() != 128 {
		t.Fatal("prec")
	}
	x := c.NewFloat().SetInt64(1)
	y := c.NewFloat()
	y.SetMantExp(big.NewFloat(1), -200) // 2^-200
	z := c.Add(c.NewFloat(), x, y)
	// At 128-bit precision, 1 + 2^-200 rounds back to 1.
	if z.Cmp(x) != 0 {
		t.Fatal("128-bit context must round away 2^-200")
	}
	wide := New(512)
	z2 := wide.Add(wide.NewFloat(), x, y)
	if z2.Cmp(x) == 0 {
		t.Fatal("512-bit context must retain 2^-200")
	}
}

func TestDefaultPrecision(t *testing.T) {
	if New(0).Prec() != 256 {
		t.Fatal("default precision must be 256 (the paper's default)")
	}
}

func TestArithmetic(t *testing.T) {
	c := New(256)
	two := c.SetFloat64(c.NewFloat(), 2)
	three := c.SetFloat64(c.NewFloat(), 3)
	if got := ToFloat64(c.Mul(c.NewFloat(), two, three)); got != 6 {
		t.Fatalf("2·3 = %v", got)
	}
	if got := ToFloat64(c.Sub(c.NewFloat(), three, two)); got != 1 {
		t.Fatalf("3−2 = %v", got)
	}
	q, undef := c.Div(c.NewFloat(), three, two)
	if undef || ToFloat64(q) != 1.5 {
		t.Fatalf("3/2 = %v (undef=%v)", ToFloat64(q), undef)
	}
	_, undef = c.Div(c.NewFloat(), three, c.NewFloat())
	if !undef {
		t.Fatal("division by zero must report undefined")
	}
	s, undef := c.Sqrt(c.NewFloat(), c.SetFloat64(c.NewFloat(), 9))
	if undef || ToFloat64(s) != 3 {
		t.Fatalf("sqrt(9) = %v", ToFloat64(s))
	}
	_, undef = c.Sqrt(c.NewFloat(), c.SetFloat64(c.NewFloat(), -1))
	if !undef {
		t.Fatal("sqrt(−1) must report undefined")
	}
	if got := ToFloat64(c.Neg(c.NewFloat(), two)); got != -2 {
		t.Fatalf("−2 = %v", got)
	}
	if got := ToFloat64(c.Abs(c.NewFloat(), c.SetFloat64(c.NewFloat(), -5))); got != 5 {
		t.Fatalf("|−5| = %v", got)
	}
}

func TestSetPositExact(t *testing.T) {
	c := New(256)
	cfg := posit.Config32
	for _, f := range []float64{13, -0.0625, 1.5e10, 3.0517578125e-05} {
		p := cfg.FromFloat64(f)
		z := c.SetPosit(c.NewFloat(), cfg, p)
		if ToFloat64(z) != cfg.ToFloat64(p) {
			t.Fatalf("SetPosit(%v) = %v", f, ToFloat64(z))
		}
	}
	// NaR becomes zero at this layer (runtime handles NaR before here).
	z := c.SetPosit(c.NewFloat(), cfg, cfg.NaR())
	if z.Sign() != 0 {
		t.Fatal("SetPosit(NaR) must be zero")
	}
}

func TestExp2(t *testing.T) {
	cases := []struct {
		f    float64
		want int
	}{{1, 0}, {1.5, 0}, {2, 1}, {3.99, 1}, {4, 2}, {0.5, -1}, {0.75, -1}, {-8, 3}}
	for _, tc := range cases {
		x := new(big.Float).SetFloat64(tc.f)
		if got := Exp2(x); got != tc.want {
			t.Fatalf("Exp2(%v) = %d, want %d", tc.f, got, tc.want)
		}
	}
	if Exp2(new(big.Float)) != 0 {
		t.Fatal("Exp2(0) defined as 0")
	}
}

// TestShadowOfCancellation demonstrates the role the context plays in the
// runtime: the 256-bit shadow of the Fig 2 discriminant retains the true
// value 2.405e20 while ⟨32,2⟩ posit arithmetic cancels to zero.
func TestShadowOfCancellation(t *testing.T) {
	c := New(256)
	cfg := posit.Config32
	a := c.SetFloat64(c.NewFloat(), 1.8309067625725952e16)
	b := c.SetFloat64(c.NewFloat(), 3.24664295424e12)
	cc := c.SetFloat64(c.NewFloat(), 1.43923904e8)
	t1 := c.Mul(c.NewFloat(), b, b)
	t2 := c.Mul(c.NewFloat(), c.SetFloat64(c.NewFloat(), 4), a)
	t2 = c.Mul(c.NewFloat(), t2, cc)
	d := c.Sub(c.NewFloat(), t1, t2)
	got := ToFloat64(d)
	if math.Abs(got-2.40507138275350151168e20)/2.4e20 > 1e-12 {
		t.Fatalf("shadow discriminant = %g, want 2.40507…e20", got)
	}
	// While the posit program computes 0.
	pd := cfg.Sub(
		cfg.Mul(cfg.FromFloat64(3.24664295424e12), cfg.FromFloat64(3.24664295424e12)),
		cfg.Mul(cfg.Mul(cfg.FromFloat64(4), cfg.FromFloat64(1.8309067625725952e16)), cfg.FromFloat64(1.43923904e8)))
	if pd != 0 {
		t.Fatal("posit discriminant must cancel")
	}
}
