package refactor

import (
	"strings"
	"testing"

	"positdebug/internal/lang"
)

const fpSrc = `
var A: [8][8]f64;
var eps: f64 = 0.5;

func norm(n: i64): f64 {
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		for (var j: i64 = 0; j < n; j += 1) {
			s = s + (A[i][j] * A[i][j]);
		}
	}
	return sqrt(s) + f64(n) * eps;
}

func single(x: f32): f32 {
	return f32(2.0) * x;
}
`

func TestSourceRewrite(t *testing.T) {
	out, err := Source(fpSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"var A: [8][8]p32;",
		"var eps: p32 = 0.5;",
		"func norm(n: i64): p32",
		"var s: p32 = 0.0;",
		"p32(n)",
		"func single(x: p32): p32",
		"p32(2.0)",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("rewritten source missing %q:\n%s", frag, out)
		}
	}
	if strings.Contains(out, "f64") || strings.Contains(out, "f32") {
		t.Fatalf("FP types survived the rewrite:\n%s", out)
	}
}

func TestCustomMapping(t *testing.T) {
	out, err := Source(`func f(x: f32): f32 { return x * 2.0; }`, Options{
		Map: map[lang.TypeKind]lang.TypeKind{lang.TF32: lang.TP16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "func f(x: p16): p16") {
		t.Fatalf("custom mapping ignored:\n%s", out)
	}
}

func TestIdempotentOnPositSource(t *testing.T) {
	src := `func f(x: p32): p32 { return x + 1.0; }`
	out, err := Source(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "func f(x: p32): p32") {
		t.Fatalf("posit source changed:\n%s", out)
	}
}

func TestRewriteControlFlow(t *testing.T) {
	src := `
func iter(x0: f64): f64 {
	var x: f64 = x0;
	var i: i64 = 0;
	while (x > 1.0 && i < 100) {
		if (x > 10.0) { x = x / 2.0; } else { x = x - 0.25; }
		i += 1;
	}
	return x;
}
`
	out, err := Source(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "f64") {
		t.Fatalf("f64 survived:\n%s", out)
	}
	// The rewritten program must run: a quick parse+check happens inside
	// Source; also ensure while/if structure survived.
	for _, frag := range []string{"while (", "if (", "} else {"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("structure lost (%q):\n%s", frag, out)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	prog, err := lang.Parse(fpSrc)
	if err != nil {
		t.Fatal(err)
	}
	formatted := lang.Format(prog)
	prog2, err := lang.Parse(formatted)
	if err != nil {
		t.Fatalf("formatted source does not parse: %v\n%s", err, formatted)
	}
	if _, err := lang.Check(prog2); err != nil {
		t.Fatalf("formatted source does not check: %v\n%s", err, formatted)
	}
	// Round-tripping again must be a fixed point.
	if lang.Format(prog2) != formatted {
		t.Fatal("Format is not a fixed point")
	}
}

func TestRefactorParseError(t *testing.T) {
	if _, err := Source("func {", Options{}); err == nil {
		t.Fatal("want error")
	}
}
