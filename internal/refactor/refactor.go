// Package refactor converts IEEE floating-point PCL programs into posit
// programs, mirroring the paper's clang-based refactorer (§4.2): every FP
// type annotation becomes the target posit type, and FP conversion calls
// become posit conversions. Because PCL's numeric literals adapt to context
// (like the SoftPosit convert-on-assign API the paper's tool emits),
// literals need no rewriting.
//
// The paper used the refactorer to create posit versions of PolyBench and
// SPEC applications without rewriting them by hand; the workloads package
// here uses it for exactly the same purpose.
package refactor

import (
	"fmt"

	"positdebug/internal/lang"
)

// Options selects the type mapping. The zero value maps both f32 and f64
// to p32 ⟨32,2⟩, the configuration the paper evaluates.
type Options struct {
	Map map[lang.TypeKind]lang.TypeKind
}

func (o Options) mapping() map[lang.TypeKind]lang.TypeKind {
	if o.Map != nil {
		return o.Map
	}
	return map[lang.TypeKind]lang.TypeKind{
		lang.TF32: lang.TP32,
		lang.TF64: lang.TP32,
	}
}

// Source rewrites an FP program source into a posit program source.
func Source(src string, opts Options) (string, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return "", fmt.Errorf("refactor: %w", err)
	}
	Program(prog, opts)
	out := lang.Format(prog)
	// The rewritten program must still be well-formed.
	p2, err := lang.Parse(out)
	if err != nil {
		return "", fmt.Errorf("refactor: rewritten source does not parse: %w", err)
	}
	if _, err := lang.Check(p2); err != nil {
		return "", fmt.Errorf("refactor: rewritten source does not type-check: %w", err)
	}
	return out, nil
}

// Program rewrites the AST in place.
func Program(prog *lang.Program, opts Options) {
	m := opts.mapping()
	for _, g := range prog.Globals {
		g.Type = mapType(g.Type, m)
		if g.Init != nil {
			rewriteExpr(g.Init, m)
		}
	}
	for _, f := range prog.Funcs {
		for i := range f.Params {
			f.Params[i].Type = mapType(f.Params[i].Type, m)
		}
		f.Ret = mapType(f.Ret, m)
		rewriteBlock(f.Body, m)
	}
}

func mapType(t lang.Type, m map[lang.TypeKind]lang.TypeKind) lang.Type {
	if nk, ok := m[t.Kind]; ok {
		t.Kind = nk
	}
	return t
}

func typeName(k lang.TypeKind) string {
	for name, kind := range lang.TypeKindByName {
		if kind == k {
			return name
		}
	}
	return ""
}

func rewriteBlock(b *lang.BlockStmt, m map[lang.TypeKind]lang.TypeKind) {
	for _, s := range b.Stmts {
		rewriteStmt(s, m)
	}
}

func rewriteStmt(s lang.Stmt, m map[lang.TypeKind]lang.TypeKind) {
	switch s := s.(type) {
	case *lang.BlockStmt:
		rewriteBlock(s, m)
	case *lang.DeclStmt:
		s.Decl.Type = mapType(s.Decl.Type, m)
		if s.Decl.Init != nil {
			rewriteExpr(s.Decl.Init, m)
		}
	case *lang.AssignStmt:
		rewriteExpr(s.Lhs, m)
		rewriteExpr(s.Rhs, m)
	case *lang.ExprStmt:
		rewriteExpr(s.X, m)
	case *lang.IfStmt:
		rewriteExpr(s.Cond, m)
		rewriteBlock(s.Then, m)
		if s.Else != nil {
			rewriteStmt(s.Else, m)
		}
	case *lang.WhileStmt:
		rewriteExpr(s.Cond, m)
		rewriteBlock(s.Body, m)
	case *lang.ForStmt:
		if s.Init != nil {
			rewriteStmt(s.Init, m)
		}
		if s.Cond != nil {
			rewriteExpr(s.Cond, m)
		}
		if s.Post != nil {
			rewriteStmt(s.Post, m)
		}
		rewriteBlock(s.Body, m)
	case *lang.ReturnStmt:
		if s.X != nil {
			rewriteExpr(s.X, m)
		}
	}
}

func rewriteExpr(e lang.Expr, m map[lang.TypeKind]lang.TypeKind) {
	switch e := e.(type) {
	case *lang.UnaryExpr:
		rewriteExpr(e.X, m)
	case *lang.BinaryExpr:
		rewriteExpr(e.L, m)
		rewriteExpr(e.R, m)
	case *lang.IndexExpr:
		for _, ix := range e.Indices {
			rewriteExpr(ix, m)
		}
	case *lang.CallExpr:
		// Conversion calls carry the FP type in their name: f64(x)→p32(x).
		if k, isType := lang.TypeKindByName[e.Name]; isType {
			if nk, ok := m[k]; ok {
				e.Name = typeName(nk)
			}
		}
		for _, a := range e.Args {
			rewriteExpr(a, m)
		}
	}
}
