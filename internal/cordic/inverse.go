package cordic

import (
	"math"

	"positdebug/internal/posit"
)

// Asin returns arcsin(v) for v ∈ [−1, 1] via the identity
// asin(v) = atan2(v, √(1−v²)), computed entirely in posit arithmetic.
// |v| > 1 and NaR yield NaR.
func Asin(v posit.Posit32) posit.Posit32 {
	if v.IsNaR() {
		return posit.NaR32
	}
	one := oneP
	v2 := v.Mul(v)
	if v2.Cmp(one) > 0 {
		return posit.NaR32
	}
	root := one.Sub(v2).Sqrt()
	return Atan2(v, root)
}

// Acos returns arccos(v) for v ∈ [−1, 1]: acos(v) = π/2 − asin(v).
func Acos(v posit.Posit32) posit.Posit32 {
	s := Asin(v)
	if s.IsNaR() {
		return posit.NaR32
	}
	return halfPiP.Sub(s)
}

// Log2 returns the base-2 logarithm: ln(v)/ln(2), with the integer part
// taken exactly from the posit scale so only the fractional part goes
// through CORDIC.
func Log2(v posit.Posit32) posit.Posit32 {
	if v.IsNaR() || v.Cmp(posit.Posit32(0)) <= 0 {
		return posit.NaR32
	}
	d := cfg.Decode(posit.Bits(v))
	k := int64(d.Scale)
	m := v.Mul(pow2(-k)) // m ∈ [1, 2)
	frac := Log(m).Mul(invLn2P)
	return posit.P32FromInt64(k).Add(frac)
}

// Log10 returns the base-10 logarithm.
func Log10(v posit.Posit32) posit.Posit32 {
	l := Log(v)
	if l.IsNaR() {
		return posit.NaR32
	}
	return l.Mul(invLn10P)
}

// Pow returns x^y = exp(y·ln(x)) for x > 0. x = 0 yields 0 for y > 0 and
// NaR otherwise; negative x yields NaR (no complex results in posit-land).
func Pow(x, y posit.Posit32) posit.Posit32 {
	if x.IsNaR() || y.IsNaR() {
		return posit.NaR32
	}
	zero := posit.Posit32(0)
	switch x.Cmp(zero) {
	case 0:
		if y.Cmp(zero) > 0 {
			return zero
		}
		return posit.NaR32
	case -1:
		return posit.NaR32
	}
	if y.Cmp(zero) == 0 {
		return oneP
	}
	return Exp(y.Mul(Log(x)))
}

// Cbrt returns the real cube root, handling negative inputs by sign
// symmetry: cbrt(x) = sign(x)·exp(ln|x|/3).
func Cbrt(x posit.Posit32) posit.Posit32 {
	if x.IsNaR() {
		return posit.NaR32
	}
	zero := posit.Posit32(0)
	if x.Cmp(zero) == 0 {
		return zero
	}
	neg := x.Cmp(zero) < 0
	r := Exp(Log(x.Abs()).Div(posit.P32FromFloat64(3)))
	if neg {
		return r.Neg()
	}
	return r
}

var invLn10P = posit.P32FromFloat64(1 / math.Ln10)
