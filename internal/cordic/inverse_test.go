package cordic

import (
	"math"
	"testing"

	"positdebug/internal/posit"
)

func TestAsinAcos(t *testing.T) {
	for _, v := range []float64{-0.99, -0.7, -0.2, 0, 0.2, 0.5, 0.9, 0.99} {
		if got := Asin(posit.P32FromFloat64(v)).Float64(); math.Abs(got-math.Asin(v)) > 2e-4 {
			t.Fatalf("asin(%v) = %v, want %v", v, got, math.Asin(v))
		}
		if got := Acos(posit.P32FromFloat64(v)).Float64(); math.Abs(got-math.Acos(v)) > 2e-4 {
			t.Fatalf("acos(%v) = %v, want %v", v, got, math.Acos(v))
		}
	}
	if !Asin(posit.P32FromFloat64(1.5)).IsNaR() {
		t.Fatal("asin out of domain must be NaR")
	}
	if !Acos(posit.NaR32).IsNaR() {
		t.Fatal("acos(NaR)")
	}
}

func TestLog2Log10(t *testing.T) {
	for _, v := range []float64{0.125, 0.5, 1, 2, 8, 1000, 1048576} {
		if got := Log2(posit.P32FromFloat64(v)).Float64(); math.Abs(got-math.Log2(v)) > 2e-5*math.Max(1, math.Abs(math.Log2(v))) {
			t.Fatalf("log2(%v) = %v, want %v", v, got, math.Log2(v))
		}
		if got := Log10(posit.P32FromFloat64(v)).Float64(); math.Abs(got-math.Log10(v)) > 2e-5*math.Max(1, math.Abs(math.Log10(v))) {
			t.Fatalf("log10(%v) = %v, want %v", v, got, math.Log10(v))
		}
	}
	if !Log2(posit.Posit32(0)).IsNaR() || !Log10(posit.P32FromFloat64(-3)).IsNaR() {
		t.Fatal("log of non-positive must be NaR")
	}
}

func TestPow(t *testing.T) {
	cases := [][2]float64{{2, 10}, {2, -3}, {9, 0.5}, {10, 2.5}, {1.5, 7}, {0.5, 12}}
	for _, c := range cases {
		want := math.Pow(c[0], c[1])
		got := Pow(posit.P32FromFloat64(c[0]), posit.P32FromFloat64(c[1])).Float64()
		if math.Abs(got-want)/want > 2e-4 {
			t.Fatalf("pow(%v,%v) = %v, want %v", c[0], c[1], got, want)
		}
	}
	if got := Pow(posit.P32FromFloat64(7), posit.Posit32(0)).Float64(); got != 1 {
		t.Fatalf("x^0 = %v", got)
	}
	if got := Pow(posit.Posit32(0), posit.P32FromFloat64(2)).Float64(); got != 0 {
		t.Fatalf("0^y = %v", got)
	}
	if !Pow(posit.Posit32(0), posit.P32FromFloat64(-1)).IsNaR() {
		t.Fatal("0^-1 must be NaR")
	}
	if !Pow(posit.P32FromFloat64(-2), posit.P32FromFloat64(0.5)).IsNaR() {
		t.Fatal("negative base must be NaR")
	}
}

func TestCbrt(t *testing.T) {
	for _, v := range []float64{8, 27, 1, 0.001, 12345} {
		if got := Cbrt(posit.P32FromFloat64(v)).Float64(); math.Abs(got-math.Cbrt(v))/math.Cbrt(v) > 2e-5 {
			t.Fatalf("cbrt(%v) = %v", v, got)
		}
	}
	if got := Cbrt(posit.P32FromFloat64(-8)).Float64(); math.Abs(got+2) > 1e-4 {
		t.Fatalf("cbrt(-8) = %v", got)
	}
	if Cbrt(posit.Posit32(0)).Float64() != 0 || !Cbrt(posit.NaR32).IsNaR() {
		t.Fatal("cbrt edges")
	}
}
