// Package cordic implements a math library for ⟨32,2⟩ posits using the
// CORDIC (COordinate Rotation DIgital Computer) family of shift-and-add
// algorithms — the library whose debugging motivated PositDebug (§5.2.1 of
// the paper). All arithmetic is performed in posit32, so the library
// exhibits exactly the error behaviour the paper studies: excellent
// accuracy over most of [0, π/2], with error accumulation in y_n and branch
// flips in the z_n recurrence for arguments near 0 (sin) and near π/2
// (cos).
//
// Rotation-mode circular CORDIC computes sin/cos; vectoring mode computes
// atan; the hyperbolic variants provide sinh/cosh/exp/ln/tanh. Constants
// (the atan/atanh tables and the scale factors K) are precomputed at high
// precision and rounded once to posit32, as the paper did with 2000-bit
// MPFR.
package cordic

import (
	"math"

	"positdebug/internal/posit"
)

// Iterations is the CORDIC iteration count; the paper's implementation
// performs 50 iterations.
const Iterations = 50

var (
	cfg = posit.Config32

	// atanTable[i] = atan(2^-i) rounded to posit32.
	atanTable [Iterations]posit.Posit32
	// atanhTable[i] = atanh(2^-i) for i ≥ 1.
	atanhTable [Iterations]posit.Posit32
	// invPow2[i] = 2^-i exactly (posits represent powers of two exactly
	// across their whole dynamic range).
	invPow2 [Iterations]posit.Posit32
	// kCircular is Π 1/sqrt(1+2^-2i), the rotation-mode scale factor.
	kCircular posit.Posit32
	// kHyper is the hyperbolic scale factor over the repeated-iteration
	// schedule.
	kHyper posit.Posit32

	piP      posit.Posit32
	halfPiP  posit.Posit32
	twoPiP   posit.Posit32
	ln2P     posit.Posit32
	oneP     posit.Posit32
	invLn2P  posit.Posit32
	hyperRep = map[int]bool{4: true, 13: true, 40: true}
)

func init() {
	kc := 1.0
	for i := 0; i < Iterations; i++ {
		atanTable[i] = posit.P32FromFloat64(math.Atan(math.Ldexp(1, -i)))
		invPow2[i] = posit.P32FromFloat64(math.Ldexp(1, -i))
		kc /= math.Sqrt(1 + math.Ldexp(1, -2*i))
	}
	kCircular = posit.P32FromFloat64(kc)
	kh := 1.0
	for i := 1; i < Iterations; i++ {
		atanhTable[i] = posit.P32FromFloat64(math.Atanh(math.Ldexp(1, -i)))
		kh *= math.Sqrt(1 - math.Ldexp(1, -2*i))
		if hyperRep[i] {
			kh *= math.Sqrt(1 - math.Ldexp(1, -2*i))
		}
	}
	kHyper = posit.P32FromFloat64(1 / kh)
	piP = posit.P32FromFloat64(math.Pi)
	halfPiP = posit.P32FromFloat64(math.Pi / 2)
	twoPiP = posit.P32FromFloat64(2 * math.Pi)
	ln2P = posit.P32FromFloat64(math.Ln2)
	invLn2P = posit.P32FromFloat64(1 / math.Ln2)
	oneP = posit.P32FromFloat64(1)
}

// shiftRight computes x·2^-i in posit arithmetic (a multiplication by an
// exact power of two — the posit analogue of CORDIC's arithmetic shift).
func shiftRight(x posit.Posit32, i int) posit.Posit32 {
	if i == 0 {
		return x
	}
	return x.Mul(invPow2[i])
}

// SinCos computes sin(θ) and cos(θ) in posit32 arithmetic via
// rotation-mode circular CORDIC with range reduction into [−π/2, π/2].
func SinCos(theta posit.Posit32) (sin, cos posit.Posit32) {
	if theta.IsNaR() {
		return posit.NaR32, posit.NaR32
	}
	t, quadNegSin, quadNegCos, swap := reduce(theta)
	s, c := kernelSinCos(t)
	if swap {
		s, c = c, s
	}
	if quadNegSin {
		s = s.Neg()
	}
	if quadNegCos {
		c = c.Neg()
	}
	return s, c
}

// Sin returns sin(θ).
func Sin(theta posit.Posit32) posit.Posit32 { s, _ := SinCos(theta); return s }

// Cos returns cos(θ).
func Cos(theta posit.Posit32) posit.Posit32 { _, c := SinCos(theta); return c }

// Tan returns tan(θ) = sin(θ)/cos(θ).
func Tan(theta posit.Posit32) posit.Posit32 {
	s, c := SinCos(theta)
	return s.Div(c)
}

// reduce maps θ into t ∈ [−π/4-ish, π/4-ish] plus quadrant fixups:
// sin(θ) = ±(sin|cos)(t). All reduction arithmetic is posit32, so large
// arguments lose accuracy exactly as a real posit library would.
func reduce(theta posit.Posit32) (t posit.Posit32, negSin, negCos, swap bool) {
	// Bring into [0, 2π).
	t = theta
	for t.Cmp(twoPiP) >= 0 {
		t = t.Sub(twoPiP)
	}
	for t.Cmp(posit.Posit32(0)) < 0 {
		t = t.Add(twoPiP)
	}
	// Quadrant split: q = floor(t / (π/2)).
	q := 0
	for t.Cmp(halfPiP) > 0 && q < 3 {
		t = t.Sub(halfPiP)
		q++
	}
	switch q {
	case 0:
		return t, false, false, false
	case 1: // sin(π/2+t)=cos t, cos→−sin t
		return t, false, true, true
	case 2: // sin(π+t)=−sin t, cos→−cos t
		return t, true, true, false
	default: // q=3: sin(3π/2+t)=−cos t, cos→ sin t
		return t, true, false, true
	}
}

// kernelSinCos runs the rotation-mode iterations for t ∈ [0, π/2].
func kernelSinCos(t posit.Posit32) (sin, cos posit.Posit32) {
	x := kCircular
	y := posit.Posit32(0)
	z := t
	zero := posit.Posit32(0)
	for i := 0; i < Iterations; i++ {
		xs := shiftRight(x, i)
		ys := shiftRight(y, i)
		if z.Cmp(zero) >= 0 {
			x, y = x.Sub(ys), y.Add(xs)
			z = z.Sub(atanTable[i])
		} else {
			x, y = x.Add(ys), y.Sub(xs)
			z = z.Add(atanTable[i])
		}
	}
	return y, x
}

// Atan returns arctan(v) via vectoring-mode circular CORDIC.
func Atan(v posit.Posit32) posit.Posit32 {
	if v.IsNaR() {
		return posit.NaR32
	}
	return Atan2(v, oneP)
}

// Atan2 returns atan2(y, x) for x > 0 inputs via vectoring mode, with the
// usual quadrant fixups for other signs.
func Atan2(y, x posit.Posit32) posit.Posit32 {
	if y.IsNaR() || x.IsNaR() {
		return posit.NaR32
	}
	zero := posit.Posit32(0)
	switch {
	case x.Cmp(zero) == 0 && y.Cmp(zero) == 0:
		return zero
	case x.Cmp(zero) == 0:
		if y.Cmp(zero) > 0 {
			return halfPiP
		}
		return halfPiP.Neg()
	case x.Cmp(zero) < 0:
		// Reflect into the right half-plane: for y ≥ 0 the result is
		// π − atan2(y, −x); for y < 0 it is atan2(−y, −x) − π.
		if y.Cmp(zero) >= 0 {
			return piP.Sub(Atan2(y, x.Neg()))
		}
		return Atan2(y.Neg(), x.Neg()).Sub(piP)
	}
	z := zero
	for i := 0; i < Iterations; i++ {
		xs := shiftRight(x, i)
		ys := shiftRight(y, i)
		if y.Cmp(zero) > 0 {
			x, y = x.Add(ys), y.Sub(xs)
			z = z.Add(atanTable[i])
		} else {
			x, y = x.Sub(ys), y.Add(xs)
			z = z.Sub(atanTable[i])
		}
	}
	return z
}

// sinhCosh runs hyperbolic rotation-mode CORDIC for |t| ≲ 1.13 (the
// convergence bound), with iterations 4, 13 and 40 repeated per the
// classical schedule.
func sinhCosh(t posit.Posit32) (sinh, cosh posit.Posit32) {
	x := kHyper
	y := posit.Posit32(0)
	z := t
	zero := posit.Posit32(0)
	for i := 1; i < Iterations; i++ {
		reps := 1
		if hyperRep[i] {
			reps = 2
		}
		for r := 0; r < reps; r++ {
			xs := shiftRight(x, i)
			ys := shiftRight(y, i)
			if z.Cmp(zero) >= 0 {
				x, y = x.Add(ys), y.Add(xs)
				z = z.Sub(atanhTable[i])
			} else {
				x, y = x.Sub(ys), y.Sub(xs)
				z = z.Add(atanhTable[i])
			}
		}
	}
	return y, x
}

// Sinh returns sinh(t) (range-reduced through Exp for large |t|).
func Sinh(t posit.Posit32) posit.Posit32 {
	if t.IsNaR() {
		return posit.NaR32
	}
	if t.Abs().Float64() <= 1.0 {
		s, _ := sinhCosh(t)
		return s
	}
	e := Exp(t)
	half := posit.P32FromFloat64(0.5)
	return e.Sub(oneP.Div(e)).Mul(half)
}

// Cosh returns cosh(t).
func Cosh(t posit.Posit32) posit.Posit32 {
	if t.IsNaR() {
		return posit.NaR32
	}
	if t.Abs().Float64() <= 1.0 {
		_, c := sinhCosh(t)
		return c
	}
	e := Exp(t)
	half := posit.P32FromFloat64(0.5)
	return e.Add(oneP.Div(e)).Mul(half)
}

// Tanh returns tanh(t) = sinh/cosh.
func Tanh(t posit.Posit32) posit.Posit32 {
	if t.IsNaR() {
		return posit.NaR32
	}
	// Saturated tails avoid needless Exp blowup.
	if t.Float64() > 20 {
		return oneP
	}
	if t.Float64() < -20 {
		return oneP.Neg()
	}
	s, c := sinhCoshWide(t)
	return s.Div(c)
}

func sinhCoshWide(t posit.Posit32) (posit.Posit32, posit.Posit32) {
	if t.Abs().Float64() <= 1.0 {
		return sinhCosh(t)
	}
	return Sinh(t), Cosh(t)
}

// Exp computes e^t: range-reduce t = k·ln2 + r with r ∈ [−ln2/2, ln2/2],
// evaluate e^r = cosh(r)+sinh(r) by hyperbolic CORDIC, and scale by the
// exact posit power 2^k.
func Exp(t posit.Posit32) posit.Posit32 {
	if t.IsNaR() {
		return posit.NaR32
	}
	tf := t.Float64()
	if tf > 200 {
		return posit.Posit32(cfg.MaxPos()) // saturate like every posit op
	}
	if tf < -200 {
		return posit.Posit32(cfg.MinPos())
	}
	// k = round(t / ln2) in posit arithmetic.
	k, _ := cfg.ToInt64(posit.Bits(t.Mul(invLn2P).Add(posit.P32FromFloat64(0.5))))
	if tf < 0 {
		k, _ = cfg.ToInt64(posit.Bits(t.Mul(invLn2P).Sub(posit.P32FromFloat64(0.5))))
	}
	r := t.Sub(posit.P32FromInt64(k).Mul(ln2P))
	s, c := sinhCosh(r)
	er := s.Add(c)
	return er.Mul(pow2(k))
}

// pow2 returns 2^k as a posit (exact within the dynamic range, saturating
// beyond it).
func pow2(k int64) posit.Posit32 {
	return posit.Posit32(cfg.FromFloat64(math.Ldexp(1, int(clampInt(k, -200, 200)))))
}

func clampInt(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Log computes ln(v) for v > 0: factor v = m·2^k with m ∈ [1, 2), compute
// ln(m) = 2·atanh((m−1)/(m+1)) by vectoring-mode hyperbolic CORDIC, and
// add k·ln2.
func Log(v posit.Posit32) posit.Posit32 {
	if v.IsNaR() || v.Cmp(posit.Posit32(0)) <= 0 {
		return posit.NaR32
	}
	d := cfg.Decode(posit.Bits(v))
	k := int64(d.Scale)
	m := v.Mul(pow2(-k)) // m ∈ [1, 2)
	num := m.Sub(oneP)
	den := m.Add(oneP)
	at := atanhVector(num.Div(den))
	two := posit.P32FromFloat64(2)
	return two.Mul(at).Add(posit.P32FromInt64(k).Mul(ln2P))
}

// atanhVector computes atanh(w) for |w| < 1 via vectoring-mode hyperbolic
// CORDIC.
func atanhVector(w posit.Posit32) posit.Posit32 {
	x := oneP
	y := w
	z := posit.Posit32(0)
	zero := posit.Posit32(0)
	for i := 1; i < Iterations; i++ {
		reps := 1
		if hyperRep[i] {
			reps = 2
		}
		for r := 0; r < reps; r++ {
			xs := shiftRight(x, i)
			ys := shiftRight(y, i)
			if y.Cmp(zero) >= 0 {
				x, y = x.Sub(ys), y.Sub(xs)
				z = z.Add(atanhTable[i])
			} else {
				x, y = x.Add(ys), y.Add(xs)
				z = z.Sub(atanhTable[i])
			}
		}
	}
	return z
}

// Sigmoid computes 1/(1+e^−t) in posit arithmetic.
func Sigmoid(t posit.Posit32) posit.Posit32 {
	if t.IsNaR() {
		return posit.NaR32
	}
	e := Exp(t.Neg())
	return oneP.Div(oneP.Add(e))
}

// FastSigmoid8 is Gustafson's bitwise sigmoid approximation for ⟨8,0⟩
// posits, the trick the paper's introduction cites: flip the sign bit and
// shift the pattern right by two. It is a fast, monotone approximation of
// 1/(1+e^−x).
func FastSigmoid8(p posit.Posit8) posit.Posit8 {
	b := uint8(p) ^ 0x80 // negate the sign bit
	return posit.Posit8(b >> 2)
}
