package cordic

import (
	"math"
	"testing"

	"positdebug/internal/posit"
)

func relErr(got posit.Posit32, want float64) float64 {
	g := got.Float64()
	if want == 0 {
		return math.Abs(g)
	}
	return math.Abs(g-want) / math.Abs(want)
}

// TestSinCosAccuracy: over the paper's evaluation range [0, π/2], the
// CORDIC posit implementation is accurate to posit precision for the vast
// majority of inputs (§5.2.1: "outperformed float on 97% of the inputs").
func TestSinCosAccuracy(t *testing.T) {
	good := 0
	total := 0
	for i := 1; i <= 500; i++ {
		theta := float64(i) / 500 * math.Pi / 2
		s, c := SinCos(posit.P32FromFloat64(theta))
		total++
		if relErr(s, math.Sin(theta)) < 1e-5 && relErr(c, math.Cos(theta)) < 1e-5 {
			good++
		}
	}
	if frac := float64(good) / float64(total); frac < 0.9 {
		t.Fatalf("only %.1f%% of inputs accurate to 1e-5", frac*100)
	}
}

// TestSinTinyArgumentError reproduces the case study: for θ = 1e−8 the
// CORDIC posit sin carries ~30% relative error — the bug PositDebug was
// built to diagnose (branch flip in iteration 29, error accumulation in y).
func TestSinTinyArgumentError(t *testing.T) {
	theta := 1e-8
	s := Sin(posit.P32FromFloat64(theta))
	re := relErr(s, math.Sin(theta))
	if re < 0.01 {
		t.Fatalf("expected the paper's large error near 0, got rel err %g (value %v)", re, s.Float64())
	}
	if re > 1.0 {
		t.Fatalf("error should be ~0.3, not %g", re)
	}
}

func TestQuadrants(t *testing.T) {
	for _, theta := range []float64{0.3, 1.2, 2.0, 3.0, 4.0, 5.5, -0.7, -2.5, 7.0} {
		s, c := SinCos(posit.P32FromFloat64(theta))
		if relErr(s, math.Sin(theta)) > 1e-4 && math.Abs(math.Sin(theta)) > 1e-3 {
			t.Fatalf("sin(%v) = %v, want %v", theta, s.Float64(), math.Sin(theta))
		}
		if relErr(c, math.Cos(theta)) > 1e-4 && math.Abs(math.Cos(theta)) > 1e-3 {
			t.Fatalf("cos(%v) = %v, want %v", theta, c.Float64(), math.Cos(theta))
		}
	}
}

func TestTan(t *testing.T) {
	for _, theta := range []float64{0.2, 0.7, 1.0, -0.5} {
		if re := relErr(Tan(posit.P32FromFloat64(theta)), math.Tan(theta)); re > 1e-4 {
			t.Fatalf("tan(%v): rel err %g", theta, re)
		}
	}
}

func TestAtan(t *testing.T) {
	for _, v := range []float64{0.1, 0.5, 1, 2, 10, -0.3, -4} {
		if re := relErr(Atan(posit.P32FromFloat64(v)), math.Atan(v)); re > 1e-4 {
			t.Fatalf("atan(%v): rel err %g", v, re)
		}
	}
}

func TestAtan2Quadrants(t *testing.T) {
	cases := [][2]float64{{1, 1}, {1, -1}, {-1, -1}, {-1, 1}, {1, 0}, {-1, 0}, {0.3, 2}, {-2, 0.1}}
	for _, c := range cases {
		want := math.Atan2(c[0], c[1])
		got := Atan2(posit.P32FromFloat64(c[0]), posit.P32FromFloat64(c[1]))
		if math.Abs(got.Float64()-want) > 1e-4 {
			t.Fatalf("atan2(%v, %v) = %v, want %v", c[0], c[1], got.Float64(), want)
		}
	}
	if Atan2(posit.Posit32(0), posit.Posit32(0)).Float64() != 0 {
		t.Fatal("atan2(0,0)")
	}
}

func TestExp(t *testing.T) {
	for _, v := range []float64{0, 0.5, 1, 2, 5, 10, -1, -5, 20, -20} {
		if re := relErr(Exp(posit.P32FromFloat64(v)), math.Exp(v)); re > 1e-4 {
			t.Fatalf("exp(%v): rel err %g (got %v)", v, re, Exp(posit.P32FromFloat64(v)).Float64())
		}
	}
	// Saturation semantics at the extremes.
	if Exp(posit.P32FromFloat64(500)) != posit.Posit32(posit.Config32.MaxPos()) {
		t.Fatal("exp(500) must saturate at maxpos")
	}
	if Exp(posit.P32FromFloat64(-500)) != posit.Posit32(posit.Config32.MinPos()) {
		t.Fatal("exp(−500) must clamp at minpos")
	}
}

func TestLog(t *testing.T) {
	for _, v := range []float64{0.001, 0.1, 0.5, 1, 2, 2.718281828, 10, 12345} {
		got := Log(posit.P32FromFloat64(v))
		want := math.Log(v)
		if math.Abs(got.Float64()-want) > 2e-5*math.Max(1, math.Abs(want)) {
			t.Fatalf("ln(%v) = %v, want %v", v, got.Float64(), want)
		}
	}
	if !Log(posit.P32FromFloat64(-1)).IsNaR() || !Log(posit.Posit32(0)).IsNaR() {
		t.Fatal("ln of non-positive must be NaR")
	}
}

func TestExpLogRoundTrip(t *testing.T) {
	for _, v := range []float64{0.25, 1, 3.5, 42} {
		p := posit.P32FromFloat64(v)
		back := Exp(Log(p))
		if re := relErr(back, v); re > 1e-4 {
			t.Fatalf("exp(ln(%v)) = %v", v, back.Float64())
		}
	}
}

func TestHyperbolics(t *testing.T) {
	for _, v := range []float64{0.1, 0.5, 0.9, 2, 5, -0.4, -3} {
		if re := relErr(Sinh(posit.P32FromFloat64(v)), math.Sinh(v)); re > 1e-4 {
			t.Fatalf("sinh(%v): rel err %g", v, re)
		}
		if re := relErr(Cosh(posit.P32FromFloat64(v)), math.Cosh(v)); re > 1e-4 {
			t.Fatalf("cosh(%v): rel err %g", v, re)
		}
		if re := relErr(Tanh(posit.P32FromFloat64(v)), math.Tanh(v)); re > 1e-4 {
			t.Fatalf("tanh(%v): rel err %g", v, re)
		}
	}
	if Tanh(posit.P32FromFloat64(25)).Float64() != 1 {
		t.Fatal("tanh saturated tail")
	}
}

func TestSigmoid(t *testing.T) {
	for _, v := range []float64{-6, -2, -0.5, 0, 0.5, 2, 6} {
		want := 1 / (1 + math.Exp(-v))
		if re := relErr(Sigmoid(posit.P32FromFloat64(v)), want); re > 1e-4 {
			t.Fatalf("sigmoid(%v): rel err %g", v, re)
		}
	}
}

// TestFastSigmoid8: Gustafson's bit trick must approximate the sigmoid
// within a few percent over the useful range and be monotone.
func TestFastSigmoid8(t *testing.T) {
	prev := -1.0
	for i := -96; i <= 96; i++ {
		p := posit.Posit8(uint8(int8(i)))
		x := p.Float64()
		got := FastSigmoid8(p).Float64()
		want := 1 / (1 + math.Exp(-x))
		if math.Abs(got-want) > 0.07 {
			t.Fatalf("fast sigmoid(%v) = %v, want ≈%v", x, got, want)
		}
		if got < prev {
			t.Fatalf("fast sigmoid must be monotone (at %v)", x)
		}
		prev = got
	}
}

func TestNaRPropagation(t *testing.T) {
	nar := posit.NaR32
	if !Sin(nar).IsNaR() || !Cos(nar).IsNaR() || !Atan(nar).IsNaR() ||
		!Exp(nar).IsNaR() || !Log(nar).IsNaR() || !Sinh(nar).IsNaR() ||
		!Cosh(nar).IsNaR() || !Tanh(nar).IsNaR() || !Sigmoid(nar).IsNaR() {
		t.Fatal("NaR must propagate through the math library")
	}
}
