package cordic

import "math"

// SinCosF32 is the float32 twin of SinCos: the identical 50-iteration
// rotation-mode CORDIC algorithm computed in IEEE float32 arithmetic. It
// exists for the paper's §5.2.1 accuracy comparison ("our posit
// implementation outperformed a similar implementation with float on 97%
// of the inputs in [0, π/2]") — same algorithm, same constants, different
// number system.
func SinCosF32(theta float32) (sin, cos float32) {
	t, negSin, negCos, swap := reduceF32(theta)
	s, c := kernelSinCosF32(t)
	if swap {
		s, c = c, s
	}
	if negSin {
		s = -s
	}
	if negCos {
		c = -c
	}
	return s, c
}

// SinF32 returns the float32 CORDIC sine.
func SinF32(theta float32) float32 { s, _ := SinCosF32(theta); return s }

var (
	atanTableF32 [Iterations]float32
	kCircularF32 float32
)

func init() {
	kc := 1.0
	for i := 0; i < Iterations; i++ {
		atanTableF32[i] = float32(math.Atan(math.Ldexp(1, -i)))
		kc /= math.Sqrt(1 + math.Ldexp(1, -2*i))
	}
	kCircularF32 = float32(kc)
}

func reduceF32(theta float32) (t float32, negSin, negCos, swap bool) {
	twoPi := float32(2 * math.Pi)
	halfPi := float32(math.Pi / 2)
	t = theta
	for t >= twoPi {
		t -= twoPi
	}
	for t < 0 {
		t += twoPi
	}
	q := 0
	for t > halfPi && q < 3 {
		t -= halfPi
		q++
	}
	switch q {
	case 0:
		return t, false, false, false
	case 1:
		return t, false, true, true
	case 2:
		return t, true, true, false
	default:
		return t, true, false, true
	}
}

func kernelSinCosF32(t float32) (sin, cos float32) {
	x := kCircularF32
	y := float32(0)
	z := t
	p2 := float32(1)
	for i := 0; i < Iterations; i++ {
		xs := x * p2
		ys := y * p2
		if z >= 0 {
			x, y = x-ys, y+xs
			z -= atanTableF32[i]
		} else {
			x, y = x+ys, y-xs
			z += atanTableF32[i]
		}
		p2 *= 0.5
	}
	return y, x
}
