package profile

import (
	"bytes"
	"strings"
	"testing"

	"positdebug/internal/ir"
	"positdebug/internal/lang"
)

func testModule() *ir.Module {
	return &ir.Module{
		Source: "test.pcl",
		Registry: []ir.InstrMeta{
			{Func: "main", Pos: lang.Pos{Line: 1, Col: 2}, Text: "x + y", Op: ir.OpBin},
			{Func: "main", Pos: lang.Pos{Line: 2, Col: 4}, Text: "x * y", Op: ir.OpBin},
			{Func: "f", Pos: lang.Pos{Line: 9, Col: 1}, Text: "a - b", Op: ir.OpBin},
		},
	}
}

func sampleProfile(t *testing.T, seedErr int) *Profile {
	t.Helper()
	c := NewCollector()
	c.Checked(0, seedErr)
	c.Checked(0, seedErr+3)
	c.Skipped(0)
	c.Checked(1, 0)
	c.Detect(1, DetectCancellation, 12)
	c.Checked(2, 30)
	c.Detect(2, DetectSaturation, 0)
	c.Detect(2, DetectNaR, 0)
	return c.Snapshot(testModule(), "k", "posit", 1, 0)
}

func marshal(t *testing.T, p *Profile) string {
	t.Helper()
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestSnapshotResolvesMetadata(t *testing.T) {
	p := sampleProfile(t, 5)
	if len(p.Insts) != 3 {
		t.Fatalf("got %d insts, want 3", len(p.Insts))
	}
	ip := p.Insts[0]
	if ip.Pos != "test.pcl:1:2" {
		t.Errorf("pos = %q, want test.pcl:1:2", ip.Pos)
	}
	if ip.Func != "main" || ip.Op != "bin" {
		t.Errorf("meta = %q/%q", ip.Func, ip.Op)
	}
	if ip.Count != 3 || ip.Checked != 2 {
		t.Errorf("count/checked = %d/%d, want 3/2", ip.Count, ip.Checked)
	}
	if ip.ErrSum != 13 || ip.ErrMax != 8 {
		t.Errorf("errSum/errMax = %d/%d, want 13/8", ip.ErrSum, ip.ErrMax)
	}
	if p.Insts[2].Saturations != 1 || p.Insts[2].NaRs != 1 {
		t.Errorf("detections not tallied: %+v", p.Insts[2])
	}
}

// Merge must be commutative byte-for-byte: worker profiles are merged in
// whatever order the pool finishes, and the result must not depend on it.
func TestMergeCommutative(t *testing.T) {
	a := sampleProfile(t, 5)
	b := sampleProfile(t, 11)
	ab, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := Merge(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if sab, sba := marshal(t, ab), marshal(t, ba); sab != sba {
		t.Fatalf("merge not commutative:\n--- a,b ---\n%s\n--- b,a ---\n%s", sab, sba)
	}
	if ab.Runs != 2 {
		t.Errorf("runs = %d, want 2", ab.Runs)
	}
	if got := ab.Insts[0].ErrSum; got != 13+25 {
		t.Errorf("merged errSum = %d, want 38", got)
	}
}

func TestMergeAssociative(t *testing.T) {
	a, b, c := sampleProfile(t, 1), sampleProfile(t, 2), sampleProfile(t, 3)
	left, err := MergeAll(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	right, err := MergeAll(c, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if marshal(t, left) != marshal(t, right) {
		t.Fatal("merge order changed the serialized profile")
	}
}

func TestMergeRejectsMismatches(t *testing.T) {
	a := sampleProfile(t, 5)
	b := sampleProfile(t, 5)
	b.Key = "other"
	if _, err := Merge(a, b); err == nil {
		t.Error("key mismatch not rejected")
	}
	b = sampleProfile(t, 5)
	b.SampleEvery = 16
	if _, err := Merge(a, b); err == nil {
		t.Error("stride mismatch not rejected")
	}
	b = sampleProfile(t, 5)
	b.Insts[0].Pos = "elsewhere:1:1"
	if _, err := Merge(a, b); err == nil {
		t.Error("metadata conflict not rejected")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := NewCollector()
	c.Timing = true
	c.Checked(0, 7)
	c.Latency(0, 1234)
	p := c.Snapshot(testModule(), "k", "posit", 1, 16)
	s1 := marshal(t, p)
	back, err := ReadJSON(strings.NewReader(s1))
	if err != nil {
		t.Fatal(err)
	}
	if s2 := marshal(t, back); s1 != s2 {
		t.Fatalf("round trip changed bytes:\n%s\nvs\n%s", s1, s2)
	}
	if back.SampleEvery != 16 {
		t.Errorf("sampleEvery = %d", back.SampleEvery)
	}
	if back.Insts[0].Lat == nil || back.Insts[0].Lat.Count != 1 {
		t.Error("latency histogram lost in round trip")
	}
}

func TestReadJSONRejectsWrongVersion(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"version":99,"key":"k","insts":[]}`)); err == nil {
		t.Error("version 99 accepted")
	}
}

func TestHistObserve(t *testing.T) {
	var h Hist
	h.ObserveBits(-3)
	h.ObserveBits(0)
	h.ObserveBits(64)
	h.ObserveBits(1000)
	if h.Buckets[0] != 2 || h.Buckets[64] != 2 {
		t.Errorf("clamping wrong: %v %v", h.Buckets[0], h.Buckets[64])
	}
	var e Hist
	e.ObserveExp(0) // bits.Len64(0)=0
	e.ObserveExp(1) // bucket 1
	e.ObserveExp(1023)
	e.ObserveExp(1024)
	if e.Buckets[0] != 1 || e.Buckets[1] != 1 || e.Buckets[10] != 1 || e.Buckets[11] != 1 {
		t.Errorf("exp bucketing wrong: %v", e.Buckets[:12])
	}
	if e.Max() != 11 {
		t.Errorf("Max = %d, want 11", e.Max())
	}
}

func TestTopRanking(t *testing.T) {
	p := sampleProfile(t, 5)
	top := p.Top(2)
	if len(top) != 2 {
		t.Fatalf("got %d rows", len(top))
	}
	// id 2 has errSum 30, id 0 has 13, id 1 has 0.
	if top[0].ID != 2 || top[1].ID != 0 {
		t.Errorf("ranking wrong: %d, %d", top[0].ID, top[1].ID)
	}
	var buf bytes.Buffer
	if err := p.WriteTop(&buf, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "test.pcl:9:1") {
		t.Errorf("report missing source position:\n%s", buf.String())
	}
}

func TestDiff(t *testing.T) {
	a := sampleProfile(t, 5)
	b := sampleProfile(t, 11)
	b.Insts = b.Insts[:2] // drop id 2 from b
	rows, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// id 2: only in a, delta -30. id 0: 13 → 25, delta +12.
	if rows[0].ID != 2 || rows[0].OnlyIn != "a" || rows[0].DeltaSum != -30 {
		t.Errorf("row0 = %+v", rows[0])
	}
	if rows[1].ID != 0 || rows[1].DeltaSum != 12 {
		t.Errorf("row1 = %+v", rows[1])
	}
	var buf bytes.Buffer
	if err := WriteDiff(&buf, rows); err != nil {
		t.Fatal(err)
	}
	// Keys differing only in the arch segment diff fine (posit vs float
	// builds of one kernel share static ids); different workloads do not.
	a.Key, b.Key = "gemm/n=8/posit32", "gemm/n=8/f64"
	if _, err := Diff(a, b); err != nil {
		t.Errorf("cross-arch diff refused: %v", err)
	}
	a.Key = "other"
	if _, err := Diff(a, b); err == nil {
		t.Error("cross-key diff accepted")
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector()
	c.Checked(0, 5)
	c.Reset()
	p := c.Snapshot(testModule(), "k", "", 0, 0)
	if len(p.Insts) != 0 {
		t.Errorf("reset left %d insts", len(p.Insts))
	}
	// Negative ids must be ignored, not panic.
	c.Checked(-1, 5)
	c.Skipped(-1)
	c.Detect(-1, DetectNaR, 0)
	c.Latency(-1, 1)
}
