package profile

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
)

// Top returns up to n instruction profiles ranked noisiest-first:
// aggregate error bits descending, then worst single error, then dynamic
// count, then id — a total order, so reports are deterministic.
func (p *Profile) Top(n int) []*InstProfile {
	ranked := make([]*InstProfile, len(p.Insts))
	copy(ranked, p.Insts)
	sort.Slice(ranked, func(i, j int) bool {
		a, b := ranked[i], ranked[j]
		if a.ErrSum != b.ErrSum {
			return a.ErrSum > b.ErrSum
		}
		if a.ErrMax != b.ErrMax {
			return a.ErrMax > b.ErrMax
		}
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return a.ID < b.ID
	})
	if n > 0 && n < len(ranked) {
		ranked = ranked[:n]
	}
	return ranked
}

// WriteTop renders the top-n table as aligned text: rank, source
// position, function, op, dynamic/checked counts, mean and max error in
// bits, and detection tallies.
func (p *Profile) WriteTop(w io.Writer, n int) error {
	ranked := p.Top(n)
	fmt.Fprintf(w, "profile %q", p.Key)
	if p.Arch != "" {
		fmt.Fprintf(w, " arch=%s", p.Arch)
	}
	fmt.Fprintf(w, " runs=%d", p.Runs)
	if p.SampleEvery > 1 {
		fmt.Fprintf(w, " sample=1/%d", p.SampleEvery)
	}
	fmt.Fprintf(w, " insts=%d\n", len(p.Insts))

	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "#\tpos\tfunc\top\tcount\tchecked\terr(mean)\terr(max)\tcancel\tsat\tnar")
	for i, ip := range ranked {
		mean := 0.0
		if ip.Checked > 0 {
			mean = float64(ip.ErrSum) / float64(ip.Checked)
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%d\t%d\t%.2f\t%d\t%d\t%d\t%d\n",
			i+1, ip.Pos, ip.Func, ip.Op, ip.Count, ip.Checked,
			mean, ip.ErrMax, ip.Cancellations, ip.Saturations, ip.NaRs)
	}
	return tw.Flush()
}

// DiffRow is one instruction's before/after comparison.
type DiffRow struct {
	ID       int32  `json:"id"`
	Pos      string `json:"pos"`
	Func     string `json:"func"`
	Op       string `json:"op,omitempty"`
	AErrSum  int64  `json:"a_err_sum"`
	BErrSum  int64  `json:"b_err_sum"`
	DeltaSum int64  `json:"delta_err_sum"`
	AErrMax  int    `json:"a_err_max"`
	BErrMax  int    `json:"b_err_max"`
	OnlyIn   string `json:"only_in,omitempty"` // "a" or "b" when not shared
}

// Diff compares two profiles of the same workload, returning rows sorted
// by absolute aggregate-error change (largest movement first, then id).
// Unlike Merge it tolerates differing strides/run counts — that is the
// point of a diff — and keys that differ only in their final
// "/"-separated arch segment (posit32 vs f64 builds of one kernel share
// static ids: RefactorToPosit rewrites types in place, so the IR
// traversal order that assigns ids is identical even where source
// columns shift). Fully different keys are still refused.
func Diff(a, b *Profile) ([]DiffRow, error) {
	if a.Key != b.Key && trimArch(a.Key) != trimArch(b.Key) {
		return nil, fmt.Errorf("profile: diffing different keys %q vs %q", a.Key, b.Key)
	}
	bByID := make(map[int32]*InstProfile, len(b.Insts))
	for _, ip := range b.Insts {
		bByID[ip.ID] = ip
	}
	var rows []DiffRow
	for _, ap := range a.Insts {
		row := DiffRow{ID: ap.ID, Pos: ap.Pos, Func: ap.Func, Op: ap.Op,
			AErrSum: ap.ErrSum, AErrMax: ap.ErrMax}
		if bp, ok := bByID[ap.ID]; ok {
			row.BErrSum, row.BErrMax = bp.ErrSum, bp.ErrMax
			delete(bByID, ap.ID)
		} else {
			row.OnlyIn = "a"
		}
		row.DeltaSum = row.BErrSum - row.AErrSum
		rows = append(rows, row)
	}
	for _, bp := range b.Insts {
		if _, gone := bByID[bp.ID]; !gone {
			continue
		}
		rows = append(rows, DiffRow{ID: bp.ID, Pos: bp.Pos, Func: bp.Func, Op: bp.Op,
			BErrSum: bp.ErrSum, BErrMax: bp.ErrMax, DeltaSum: bp.ErrSum, OnlyIn: "b"})
	}
	sort.Slice(rows, func(i, j int) bool {
		ai, aj := abs64(rows[i].DeltaSum), abs64(rows[j].DeltaSum)
		if ai != aj {
			return ai > aj
		}
		return rows[i].ID < rows[j].ID
	})
	return rows, nil
}

// WriteDiff renders the diff rows as aligned text.
func WriteDiff(w io.Writer, rows []DiffRow) error {
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "pos\tfunc\top\terr_sum(a)\terr_sum(b)\tdelta\terr_max(a→b)\tnote")
	for _, r := range rows {
		note := ""
		switch r.OnlyIn {
		case "a":
			note = "only in a"
		case "b":
			note = "only in b"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%+d\t%d→%d\t%s\n",
			r.Pos, r.Func, r.Op, r.AErrSum, r.BErrSum, r.DeltaSum, r.AErrMax, r.BErrMax, note)
	}
	return tw.Flush()
}

// trimArch drops a key's final "/"-separated segment (the arch), leaving
// the workload identity: "gemm/n=8/posit32" → "gemm/n=8".
func trimArch(key string) string {
	if i := strings.LastIndexByte(key, '/'); i > 0 {
		return key[:i]
	}
	return key
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
