// Package profile aggregates numerical-error statistics per static
// instruction — the cross-run view the per-run shadow reports cannot give:
// which instructions are chronically noisy, how their ULP error
// distributes, and (optionally) where shadow-execution time goes. It is
// the data model behind cmd/pdprof and the pdserve /debug/profile
// endpoint.
//
// The design constraints mirror internal/parallel's determinism contract:
//
//   - Collection is deterministic: a Collector fed by a deterministic run
//     accumulates identical stats regardless of scheduling. Latency
//     histograms are the one exception and are therefore opt-in (Timing),
//     excluded from byte-identity checks.
//   - Merging is commutative and associative: Merge(a,b) == Merge(b,a)
//     byte-for-byte after serialization, so per-worker profiles merged in
//     any order — or profiles from different machines merged days apart —
//     produce the same artifact.
//   - Serialization is versioned and canonical: instructions sorted by id,
//     histograms as sorted sparse pairs, json.MarshalIndent, so two equal
//     profiles are byte-identical files and `diff` means something.
package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"

	"positdebug/internal/ir"
)

// Version is the profile file-format version; ReadJSON rejects files whose
// version it does not understand.
const Version = 1

// HistBuckets sizes a Hist: bucket 0 holds zero observations, bucket i
// (1..64) holds values v with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i —
// exponential buckets. For err-bits observations (already log2 of the ULP
// distance) ObserveBits indexes directly, which makes the histogram
// exponential in ULPs with one bucket per doubling.
const HistBuckets = 65

// Hist is a fixed-shape exponential-bucket histogram. The zero value is
// ready to use. Not safe for concurrent use (profiles are per-worker and
// merged, never shared).
type Hist struct {
	Buckets [HistBuckets]int64
	Count   int64
	Sum     int64
}

// ObserveBits records an observation already on the 0..64 log scale
// (err bits). Out-of-range values clamp.
func (h *Hist) ObserveBits(b int) {
	if b < 0 {
		b = 0
	}
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	h.Buckets[b]++
	h.Count++
	h.Sum += int64(b)
}

// ObserveExp records a raw value into its log2 bucket (latency in
// nanoseconds). Negative values clamp to 0.
func (h *Hist) ObserveExp(v int64) {
	if v < 0 {
		v = 0
	}
	h.Buckets[bits.Len64(uint64(v))]++
	h.Count++
	h.Sum += v
}

// Merge adds o's observations into h.
func (h *Hist) Merge(o *Hist) {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Count += o.Count
	h.Sum += o.Sum
}

// Max returns the highest nonempty bucket index (0 when empty).
func (h *Hist) Max() int {
	for i := HistBuckets - 1; i > 0; i-- {
		if h.Buckets[i] != 0 {
			return i
		}
	}
	return 0
}

// histJSON is the canonical wire form: sparse [bucket, count] pairs in
// ascending bucket order, so equal histograms serialize byte-identically
// and empty buckets cost nothing.
type histJSON struct {
	Count   int64      `json:"count"`
	Sum     int64      `json:"sum"`
	Buckets [][2]int64 `json:"buckets"`
}

// MarshalJSON implements json.Marshaler with the canonical sparse form.
func (h Hist) MarshalJSON() ([]byte, error) {
	hj := histJSON{Count: h.Count, Sum: h.Sum, Buckets: [][2]int64{}}
	for i, c := range h.Buckets {
		if c != 0 {
			hj.Buckets = append(hj.Buckets, [2]int64{int64(i), c})
		}
	}
	return json.Marshal(hj)
}

// UnmarshalJSON implements json.Unmarshaler.
func (h *Hist) UnmarshalJSON(b []byte) error {
	var hj histJSON
	if err := json.Unmarshal(b, &hj); err != nil {
		return err
	}
	*h = Hist{Count: hj.Count, Sum: hj.Sum}
	for _, p := range hj.Buckets {
		if p[0] < 0 || p[0] >= HistBuckets {
			return fmt.Errorf("profile: histogram bucket %d out of range", p[0])
		}
		h.Buckets[p[0]] = p[1]
	}
	return nil
}

// InstProfile is the aggregated record of one static instruction.
type InstProfile struct {
	// ID is the static instruction id (the module registry index).
	ID int32 `json:"id"`
	// Func, Pos, Text and Op come from the frontend's registry entry: Pos
	// is "file:line:col" (file from the module's source name).
	Func string `json:"func"`
	Pos  string `json:"pos"`
	Text string `json:"text,omitempty"`
	Op   string `json:"op,omitempty"`

	// Count is the dynamic occurrences observed (including instances the
	// sampler skipped); Checked is how many were shadow-checked. Without
	// sampling the two are equal.
	Count   int64 `json:"count"`
	Checked int64 `json:"checked"`

	// Err is the distribution of per-occurrence ULP error in bits (§4.2
	// metric) — exponential in ULPs by construction. ErrSum/ErrMax are the
	// aggregate and worst error in bits across all checked occurrences.
	Err    Hist  `json:"err"`
	ErrSum int64 `json:"err_sum"`
	ErrMax int   `json:"err_max"`

	// Detection tallies attributed to this instruction; Cancel is the
	// severity distribution (cancelled leading bits) of the cancellations.
	Cancellations int64 `json:"cancellations,omitempty"`
	Cancel        *Hist `json:"cancel,omitempty"`
	Saturations   int64 `json:"saturations,omitempty"`
	NaRs          int64 `json:"nars,omitempty"`

	// Lat is the shadow-op latency distribution (log2 nanosecond buckets)
	// and LatNanos the total; only populated when the collector ran with
	// Timing enabled, and deliberately excluded from determinism checks.
	Lat      *Hist `json:"lat,omitempty"`
	LatNanos int64 `json:"lat_nanos,omitempty"`
}

// merge folds o into p; the identity fields must already have been checked.
func (p *InstProfile) merge(o *InstProfile) {
	p.Count += o.Count
	p.Checked += o.Checked
	p.Err.Merge(&o.Err)
	p.ErrSum += o.ErrSum
	if o.ErrMax > p.ErrMax {
		p.ErrMax = o.ErrMax
	}
	p.Cancellations += o.Cancellations
	if o.Cancel != nil {
		if p.Cancel == nil {
			p.Cancel = &Hist{}
		}
		p.Cancel.Merge(o.Cancel)
	}
	p.Saturations += o.Saturations
	p.NaRs += o.NaRs
	p.LatNanos += o.LatNanos
	if o.Lat != nil {
		if p.Lat == nil {
			p.Lat = &Hist{}
		}
		p.Lat.Merge(o.Lat)
	}
}

// Profile is the serializable aggregate: one record per static instruction
// that produced at least one observation, sorted by id.
type Profile struct {
	Version int `json:"version"`
	// Key identifies what was profiled (workload name, source hash).
	// Merging profiles with different keys is an error.
	Key string `json:"key"`
	// Arch is "posit" or "float" when known.
	Arch string `json:"arch,omitempty"`
	// Runs is the number of program executions aggregated.
	Runs int64 `json:"runs"`
	// SampleEvery records the sampling stride the profile was collected at
	// (0 or 1 = full shadow). Profiles at different strides do not merge.
	SampleEvery int64 `json:"sample_every,omitempty"`

	Insts []*InstProfile `json:"insts"`
}

// Merge returns a new profile combining p and o. It is commutative:
// Merge(a, b) and Merge(b, a) serialize byte-identically. Key, Version and
// SampleEvery must match; conflicting per-instruction metadata (same id,
// different source position) is an error rather than a silent pick.
func Merge(p, o *Profile) (*Profile, error) {
	if p.Version != o.Version {
		return nil, fmt.Errorf("profile: version mismatch %d vs %d", p.Version, o.Version)
	}
	if p.Key != o.Key {
		return nil, fmt.Errorf("profile: key mismatch %q vs %q", p.Key, o.Key)
	}
	if p.Arch != o.Arch {
		return nil, fmt.Errorf("profile: arch mismatch %q vs %q", p.Arch, o.Arch)
	}
	if normStride(p.SampleEvery) != normStride(o.SampleEvery) {
		return nil, fmt.Errorf("profile: sampling stride mismatch %d vs %d", p.SampleEvery, o.SampleEvery)
	}
	out := &Profile{
		Version: p.Version, Key: p.Key, Arch: p.Arch,
		Runs: p.Runs + o.Runs, SampleEvery: p.SampleEvery,
	}
	byID := make(map[int32]*InstProfile, len(p.Insts)+len(o.Insts))
	for _, src := range [][]*InstProfile{p.Insts, o.Insts} {
		for _, ip := range src {
			if have, ok := byID[ip.ID]; ok {
				if have.Func != ip.Func || have.Pos != ip.Pos {
					return nil, fmt.Errorf("profile: instruction %d metadata conflict (%s %s vs %s %s)",
						ip.ID, have.Func, have.Pos, ip.Func, ip.Pos)
				}
				have.merge(ip)
				continue
			}
			cp := *ip
			if ip.Lat != nil {
				lat := *ip.Lat
				cp.Lat = &lat
			}
			if ip.Cancel != nil {
				can := *ip.Cancel
				cp.Cancel = &can
			}
			byID[ip.ID] = &cp
		}
	}
	out.Insts = make([]*InstProfile, 0, len(byID))
	for _, ip := range byID {
		out.Insts = append(out.Insts, ip)
	}
	sort.Slice(out.Insts, func(i, j int) bool { return out.Insts[i].ID < out.Insts[j].ID })
	return out, nil
}

// MergeAll folds any number of profiles; order does not affect the result.
func MergeAll(ps ...*Profile) (*Profile, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("profile: nothing to merge")
	}
	out := ps[0]
	var err error
	for _, p := range ps[1:] {
		if out, err = Merge(out, p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func normStride(n int64) int64 {
	if n <= 1 {
		return 1
	}
	return n
}

// WriteJSON writes the canonical serialization (sorted, indented, trailing
// newline) so equal profiles are byte-identical files.
func (p *Profile) WriteJSON(w io.Writer) error {
	sort.Slice(p.Insts, func(i, j int) bool { return p.Insts[i].ID < p.Insts[j].ID })
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// ReadJSON parses a profile, enforcing the format version.
func ReadJSON(r io.Reader) (*Profile, error) {
	var p Profile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	if p.Version != Version {
		return nil, fmt.Errorf("profile: unsupported version %d (want %d)", p.Version, Version)
	}
	return &p, nil
}

// DetectKind classifies a detection tally without importing the shadow
// package (which imports this one).
type DetectKind uint8

// Detection tallies the collector tracks per instruction.
const (
	DetectCancellation DetectKind = iota
	DetectSaturation
	DetectNaR
)

// instStats is the mutable per-instruction accumulator behind a Collector.
type instStats struct {
	count, checked int64
	err            Hist
	errSum         int64
	errMax         int
	cancels        int64
	cancel         *Hist
	sats           int64
	nars           int64
	latNanos       int64
	lat            *Hist
}

// Collector accumulates per-instruction statistics during shadow
// execution. It is bound to a run via the WithProfile option; the shadow
// runtime feeds it on the hot path, so lookups are a dense slice index.
// Not safe for concurrent use: parallel sweeps hold one Collector per
// worker and merge the snapshots (Merge is commutative, so worker count
// and scheduling never change the merged bytes).
type Collector struct {
	// Timing enables shadow-op latency histograms. Wall-clock timing is
	// inherently nondeterministic, so determinism checks run with Timing
	// off.
	Timing bool

	stats []*instStats
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

func (c *Collector) at(id int32) *instStats {
	if id < 0 {
		return nil
	}
	if int(id) >= len(c.stats) {
		grown := make([]*instStats, int(id)+16)
		copy(grown, c.stats)
		c.stats = grown
	}
	s := c.stats[id]
	if s == nil {
		s = &instStats{}
		c.stats[id] = s
	}
	return s
}

// Checked records one shadow-checked occurrence with its error in bits.
func (c *Collector) Checked(id int32, errBits int) {
	s := c.at(id)
	if s == nil {
		return
	}
	s.count++
	s.checked++
	s.err.ObserveBits(errBits)
	if errBits > 0 {
		s.errSum += int64(errBits)
	}
	if errBits > s.errMax {
		s.errMax = errBits
	}
}

// Skipped records one occurrence the sampler did not shadow.
func (c *Collector) Skipped(id int32) {
	if s := c.at(id); s != nil {
		s.count++
	}
}

// Detect tallies one detection attributed to the instruction. severity is
// the cancelled leading bits for cancellations (fed into the severity
// histogram) and ignored for the other kinds.
func (c *Collector) Detect(id int32, k DetectKind, severity int) {
	s := c.at(id)
	if s == nil {
		return
	}
	switch k {
	case DetectCancellation:
		s.cancels++
		if s.cancel == nil {
			s.cancel = &Hist{}
		}
		s.cancel.ObserveBits(severity)
	case DetectSaturation:
		s.sats++
	case DetectNaR:
		s.nars++
	}
}

// Latency records the wall time one shadow op spent (Timing mode only; the
// caller guards on Timing to keep clock reads off the default hot path).
func (c *Collector) Latency(id int32, ns int64) {
	s := c.at(id)
	if s == nil {
		return
	}
	s.latNanos += ns
	if s.lat == nil {
		s.lat = &Hist{}
	}
	s.lat.ObserveExp(ns)
}

// Reset drops all accumulated statistics, keeping the backing slice.
func (c *Collector) Reset() {
	for i := range c.stats {
		c.stats[i] = nil
	}
}

// Snapshot materializes the collector into a serializable profile,
// resolving instruction metadata (function, source position, text) from
// the module registry. key names what was profiled, runs how many
// executions the collector saw, and sampleEvery the sampling stride (0 or
// 1 = full shadow).
func (c *Collector) Snapshot(mod *ir.Module, key, arch string, runs, sampleEvery int64) *Profile {
	p := &Profile{Version: Version, Key: key, Arch: arch, Runs: runs}
	if sampleEvery > 1 {
		p.SampleEvery = sampleEvery
	}
	src := mod.Source
	if src == "" {
		src = "src"
	}
	for id, s := range c.stats {
		if s == nil || s.count == 0 {
			continue
		}
		meta := mod.Meta(int32(id))
		ip := &InstProfile{
			ID:   int32(id),
			Func: meta.Func,
			Pos:  fmt.Sprintf("%s:%s", src, meta.Pos),
			Text: meta.Text,
			Op:   meta.Op.String(),

			Count:   s.count,
			Checked: s.checked,
			Err:     s.err,
			ErrSum:  s.errSum,
			ErrMax:  s.errMax,

			Cancellations: s.cancels,
			Saturations:   s.sats,
			NaRs:          s.nars,
			LatNanos:      s.latNanos,
		}
		if s.lat != nil {
			lat := *s.lat
			ip.Lat = &lat
		}
		if s.cancel != nil {
			can := *s.cancel
			ip.Cancel = &can
		}
		p.Insts = append(p.Insts, ip)
	}
	sort.Slice(p.Insts, func(i, j int) bool { return p.Insts[i].ID < p.Insts[j].ID })
	return p
}
