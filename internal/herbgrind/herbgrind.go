// Package herbgrind implements a Herbgrind-style shadow-execution baseline
// for the comparison in §5.4 of the paper. Like Herbgrind (Sanchez-Stern et
// al., PLDI 2018), it keeps high-precision shadow values AND, for every
// dynamic numeric instruction, a freshly allocated trace node linked to its
// operands' traces; memory locations hold the full trace of the value
// stored in them. Nothing bounds the trace metadata, so its footprint grows
// with the number of dynamic instructions — the design decision that makes
// Herbgrind an order of magnitude slower than FPSanitizer and infeasible on
// long-running programs, which is exactly the contrast the benchmark
// harness measures.
package herbgrind

import (
	"math"
	"math/big"

	"positdebug/internal/bigfp"
	"positdebug/internal/interp"
	"positdebug/internal/ir"
	"positdebug/internal/ulp"
)

// TraceNode is one dynamic instruction in the unbounded trace metadata.
type TraceNode struct {
	Inst int32
	Op   string
	Args []*TraceNode
}

// influence is the set of static instructions that contributed to a value.
// Herbgrind maintains such "influence bags" per shadow value and unions
// them on every operation; the copies are a major component of its cost.
type influence map[int32]struct{}

func (in influence) union(other influence, extra int32) influence {
	out := make(influence, len(in)+len(other)+1)
	for k := range in {
		out[k] = struct{}{}
	}
	for k := range other {
		out[k] = struct{}{}
	}
	if extra >= 0 {
		out[extra] = struct{}{}
	}
	return out
}

// meta is the per-temporary shadow state.
type meta struct {
	real    big.Float
	undef   bool
	trace   *TraceNode
	infl    influence
	written bool
}

type frame struct {
	temps []meta
}

// Runtime implements interp.Hooks with Herbgrind-style metadata.
type Runtime struct {
	mod *ir.Module
	ctx bigfp.Context

	frames   []*frame
	mem      map[uint32]*meta
	argStack []meta
	retMeta  meta
	retValid bool
	quires   map[ir.Type]*big.Float

	// history pins every dynamic trace node, reproducing Herbgrind's
	// metadata-space growth proportional to dynamic instruction count.
	history []*TraceNode
	// repr holds the per-static-instruction representative (generalized)
	// expression; every dynamic execution anti-unifies its concrete trace
	// into it, Herbgrind's core abstraction step.
	repr map[int32]*TraceNode
	// maxLocal/maxGlobal aggregate per-static-instruction error, mirroring
	// Herbgrind's per-op local-vs-global error attribution.
	maxLocal  map[int32]int
	maxGlobal map[int32]int
	scratchA  big.Float
	scratchB  big.Float
	scratchR  big.Float

	totalOps uint64
}

var _ interp.Hooks = (*Runtime)(nil)

// New returns a Herbgrind-style runtime with the given shadow precision.
func New(mod *ir.Module, precision uint) *Runtime {
	return &Runtime{
		mod:       mod,
		ctx:       bigfp.New(precision),
		mem:       map[uint32]*meta{},
		quires:    map[ir.Type]*big.Float{},
		repr:      map[int32]*TraceNode{},
		maxLocal:  map[int32]int{},
		maxGlobal: map[int32]int{},
	}
}

// TraceNodes reports the number of accumulated dynamic trace nodes.
func (r *Runtime) TraceNodes() int { return len(r.history) }

// TotalOps reports shadowed operations.
func (r *Runtime) TotalOps() uint64 { return r.totalOps }

// Reset clears all state.
func (r *Runtime) Reset() {
	r.frames = r.frames[:0]
	r.mem = map[uint32]*meta{}
	r.argStack = r.argStack[:0]
	r.retValid = false
	r.quires = map[ir.Type]*big.Float{}
	r.history = nil
	r.repr = map[int32]*TraceNode{}
	r.maxLocal = map[int32]int{}
	r.maxGlobal = map[int32]int{}
	r.totalOps = 0
}

func (r *Runtime) cur() *frame { return r.frames[len(r.frames)-1] }

func (r *Runtime) newTrace(inst int32, op string, args ...*TraceNode) *TraceNode {
	n := &TraceNode{Inst: inst, Op: op, Args: args}
	r.history = append(r.history, n)
	return n
}

// updateRepr anti-unifies the concrete trace of a dynamic execution into
// the static instruction's representative expression — Herbgrind's
// abstract-expression update, performed on every dynamic operation. The
// walk is bounded per update, but representatives are rebuilt (allocated)
// each time, which is the second major component of Herbgrind's cost.
func (r *Runtime) updateRepr(id int32, concrete *TraceNode) {
	budget := 512
	r.repr[id] = antiUnify(r.repr[id], concrete, &budget)
}

func antiUnify(a, b *TraceNode, budget *int) *TraceNode {
	if *budget <= 0 {
		return &TraceNode{Op: "…"}
	}
	*budget--
	if a == nil {
		return copyTree(b, budget)
	}
	if b == nil || a.Op != b.Op || len(a.Args) != len(b.Args) {
		return &TraceNode{Op: "?"}
	}
	n := &TraceNode{Inst: a.Inst, Op: a.Op}
	if len(a.Args) > 0 {
		n.Args = make([]*TraceNode, len(a.Args))
		for i := range a.Args {
			n.Args[i] = antiUnify(a.Args[i], b.Args[i], budget)
		}
	}
	return n
}

func copyTree(b *TraceNode, budget *int) *TraceNode {
	if b == nil || *budget <= 0 {
		return &TraceNode{Op: "…"}
	}
	*budget--
	n := &TraceNode{Inst: b.Inst, Op: b.Op}
	if len(b.Args) > 0 {
		n.Args = make([]*TraceNode, len(b.Args))
		for i := range b.Args {
			n.Args[i] = copyTree(b.Args[i], budget)
		}
	}
	return n
}

// ReprSize reports the total nodes across representative expressions.
func (r *Runtime) ReprSize() int {
	total := 0
	for _, n := range r.repr {
		total += treeSize(n)
	}
	return total
}

func treeSize(n *TraceNode) int {
	if n == nil {
		return 0
	}
	s := 1
	for _, k := range n.Args {
		s += treeSize(k)
	}
	return s
}

// EnterFunc pushes a frame and binds arguments.
func (r *Runtime) EnterFunc(fn *ir.Func, argVals []uint64) {
	f := &frame{temps: make([]meta, fn.NumRegs)}
	r.frames = append(r.frames, f)
	n := len(fn.Params)
	if len(r.argStack) >= n && n > 0 {
		base := len(r.argStack) - n
		for i := 0; i < n; i++ {
			if fn.Params[i].IsNumeric() && r.argStack[base+i].written {
				f.temps[i] = r.argStack[base+i]
			} else if fn.Params[i].IsNumeric() {
				r.seed(&f.temps[i], fn.Params[i], argVals[i])
			}
		}
		r.argStack = r.argStack[:base]
		return
	}
	for i := 0; i < n && i < len(argVals); i++ {
		if fn.Params[i].IsNumeric() {
			r.seed(&f.temps[i], fn.Params[i], argVals[i])
		}
	}
}

// LeaveFunc pops the frame (its traces stay pinned in history, as in
// Herbgrind).
func (r *Runtime) LeaveFunc() { r.frames = r.frames[:len(r.frames)-1] }

func (r *Runtime) seed(m *meta, typ ir.Type, bits uint64) {
	f := interp.ToFloat64(typ, bits)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		m.undef = true
		m.real.SetPrec(r.ctx.Prec()).SetInt64(0)
	} else {
		m.undef = false
		r.ctx.SetFloat64(&m.real, f)
	}
	m.trace = r.newTrace(-1, "value")
	m.infl = influence{}
	m.written = true
}

func (r *Runtime) ensure(reg int32, typ ir.Type, bits uint64) *meta {
	m := &r.cur().temps[reg]
	if !m.written {
		r.seed(m, typ, bits)
	}
	return m
}

// Const seeds a literal.
func (r *Runtime) Const(id int32, typ ir.Type, dst int32, bits uint64) {
	m := &r.cur().temps[dst]
	r.ctx.SetFloat64(&m.real, r.mod.Meta(id).Const)
	m.undef = false
	m.trace = r.newTrace(id, "const")
	m.infl = influence{id: struct{}{}}
	m.written = true
	r.totalOps++
}

// Mov copies metadata.
func (r *Runtime) Mov(id int32, typ ir.Type, dst, src int32, bits uint64) {
	s := r.ensure(src, typ, bits)
	d := &r.cur().temps[dst]
	r.ctx.Copy(&d.real, &s.real)
	d.undef = s.undef
	d.trace = s.trace
	d.infl = s.infl
	d.written = true
}

// Bin performs the shadow operation and allocates the trace node.
func (r *Runtime) Bin(id int32, kind ir.BinKind, typ ir.Type, dst, a, b int32, dstVal, aVal, bVal uint64) {
	ta := r.ensure(a, typ, aVal)
	tb := r.ensure(b, typ, bVal)
	d := &r.cur().temps[dst]
	undef := ta.undef || tb.undef
	if !undef {
		switch kind {
		case ir.BinAdd:
			r.ctx.Add(&d.real, &ta.real, &tb.real)
		case ir.BinSub:
			r.ctx.Sub(&d.real, &ta.real, &tb.real)
		case ir.BinMul:
			r.ctx.Mul(&d.real, &ta.real, &tb.real)
		case ir.BinDiv:
			_, bad := r.ctx.Div(&d.real, &ta.real, &tb.real)
			undef = undef || bad
		}
	}
	d.undef = undef
	d.trace = r.newTrace(id, kind.String(), ta.trace, tb.trace)
	d.infl = ta.infl.union(tb.infl, id)
	r.updateRepr(id, d.trace)
	if !undef {
		r.attributeError(id, kind, typ, dstVal, aVal, bVal, &d.real)
	}
	d.written = true
	r.totalOps++
}

// attributeError performs Herbgrind's local-vs-global error split: the
// operation is re-executed with the *rounded* (program) operand values to
// obtain the locally exact result; its distance to the program result is
// the local error, while the distance to the fully shadowed result is the
// global error. Two extra high-precision operations and two ULP
// computations per dynamic instruction.
func (r *Runtime) attributeError(id int32, kind ir.BinKind, typ ir.Type, dstVal, aVal, bVal uint64, global *big.Float) {
	av := interp.ToFloat64(typ, aVal)
	bv := interp.ToFloat64(typ, bVal)
	dv := interp.ToFloat64(typ, dstVal)
	if math.IsNaN(av) || math.IsNaN(bv) || math.IsNaN(dv) ||
		math.IsInf(av, 0) || math.IsInf(bv, 0) || math.IsInf(dv, 0) {
		return
	}
	r.ctx.SetFloat64(&r.scratchA, av)
	r.ctx.SetFloat64(&r.scratchB, bv)
	ok := true
	switch kind {
	case ir.BinAdd:
		r.ctx.Add(&r.scratchR, &r.scratchA, &r.scratchB)
	case ir.BinSub:
		r.ctx.Sub(&r.scratchR, &r.scratchA, &r.scratchB)
	case ir.BinMul:
		r.ctx.Mul(&r.scratchR, &r.scratchA, &r.scratchB)
	case ir.BinDiv:
		_, bad := r.ctx.Div(&r.scratchR, &r.scratchA, &r.scratchB)
		ok = !bad
	}
	if !ok {
		return
	}
	local := ulp.Bits(ulp.DistanceBig(dv, &r.scratchR))
	glob := ulp.Bits(ulp.DistanceBig(dv, global))
	if local > r.maxLocal[id] {
		r.maxLocal[id] = local
	}
	if glob > r.maxGlobal[id] {
		r.maxGlobal[id] = glob
	}
}

// Un performs the shadow unary operation.
func (r *Runtime) Un(id int32, kind ir.UnKind, typ ir.Type, dst, a int32, dstVal, aVal uint64) {
	ta := r.ensure(a, typ, aVal)
	d := &r.cur().temps[dst]
	undef := ta.undef
	if !undef {
		switch kind {
		case ir.UnNeg:
			r.ctx.Neg(&d.real, &ta.real)
		case ir.UnAbs:
			r.ctx.Abs(&d.real, &ta.real)
		case ir.UnSqrt:
			_, bad := r.ctx.Sqrt(&d.real, &ta.real)
			undef = bad
		default:
			r.ctx.Copy(&d.real, &ta.real)
		}
	}
	d.undef = undef
	d.trace = r.newTrace(id, kind.String(), ta.trace)
	d.infl = ta.infl.union(nil, id)
	r.updateRepr(id, d.trace)
	d.written = true
	r.totalOps++
}

// Cmp evaluates the shadow comparison (Herbgrind also watches branches).
func (r *Runtime) Cmp(id int32, pred ir.CmpPred, typ ir.Type, a, b int32, aVal, bVal uint64, outcome bool) {
	ta := r.ensure(a, typ, aVal)
	tb := r.ensure(b, typ, bVal)
	if ta.undef || tb.undef {
		return
	}
	_ = ta.real.Cmp(&tb.real)
	r.newTrace(id, pred.String(), ta.trace, tb.trace)
	r.totalOps++
}

// Cast propagates through conversions.
func (r *Runtime) Cast(id int32, from, to ir.Type, dst, src int32, dstVal, srcVal uint64) {
	if !from.IsNumeric() && !to.IsNumeric() {
		return
	}
	d := &r.cur().temps[dst]
	if from.IsNumeric() {
		s := r.ensure(src, from, srcVal)
		if to == ir.I64 {
			r.newTrace(id, "toint", s.trace)
			return
		}
		r.ctx.Copy(&d.real, &s.real)
		d.undef = s.undef
		d.trace = r.newTrace(id, "cast", s.trace)
		d.infl = s.infl
		d.written = true
		return
	}
	d.real.SetPrec(r.ctx.Prec()).SetInt64(int64(srcVal))
	d.undef = false
	d.trace = r.newTrace(id, "fromint")
	d.written = true
}

// Load pulls the full trace from memory metadata.
func (r *Runtime) Load(id int32, typ ir.Type, dst int32, addr uint32, bits uint64) {
	d := &r.cur().temps[dst]
	mm, ok := r.mem[addr]
	if !ok {
		r.seed(d, typ, bits)
		return
	}
	r.ctx.Copy(&d.real, &mm.real)
	d.undef = mm.undef
	d.trace = mm.trace
	d.infl = mm.infl
	d.written = true
}

// Store writes the full trace into memory metadata.
func (r *Runtime) Store(id int32, typ ir.Type, addr uint32, src int32, bits uint64) {
	s := r.ensure(src, typ, bits)
	mm, ok := r.mem[addr]
	if !ok {
		mm = &meta{}
		r.mem[addr] = mm
	}
	r.ctx.Copy(&mm.real, &s.real)
	mm.undef = s.undef
	mm.trace = s.trace
	mm.infl = s.infl
	mm.written = true
}

// PreCall pushes argument metadata.
func (r *Runtime) PreCall(callee *ir.Func, args []int32, argVals []uint64) {
	for i, reg := range args {
		var entry meta
		if callee.Params[i].IsNumeric() {
			src := r.ensure(reg, callee.Params[i], argVals[i])
			r.ctx.Copy(&entry.real, &src.real)
			entry.undef = src.undef
			entry.trace = src.trace
			entry.infl = src.infl
			entry.written = true
		}
		r.argStack = append(r.argStack, entry)
	}
}

// Ret records the returned metadata.
func (r *Runtime) Ret(typ ir.Type, src int32, bits uint64) {
	r.retValid = false
	if src < 0 || !typ.IsNumeric() {
		return
	}
	s := r.ensure(src, typ, bits)
	r.ctx.Copy(&r.retMeta.real, &s.real)
	r.retMeta.undef = s.undef
	r.retMeta.trace = s.trace
	r.retMeta.infl = s.infl
	r.retMeta.written = true
	r.retValid = true
}

// PostCall binds the returned metadata.
func (r *Runtime) PostCall(id int32, typ ir.Type, dst int32, bits uint64) {
	if dst < 0 || !typ.IsNumeric() {
		return
	}
	d := &r.cur().temps[dst]
	if r.retValid {
		r.ctx.Copy(&d.real, &r.retMeta.real)
		d.undef = r.retMeta.undef
		d.trace = r.retMeta.trace
		d.infl = r.retMeta.infl
		d.written = true
	} else {
		r.seed(d, typ, bits)
	}
	r.retValid = false
}

// Print observes an output.
func (r *Runtime) Print(id int32, typ ir.Type, src int32, bits uint64) {
	if !typ.IsNumeric() {
		return
	}
	s := r.ensure(src, typ, bits)
	r.newTrace(id, "output", s.trace)
}

// FMA performs the fused multiply-add with full trace bookkeeping.
func (r *Runtime) FMA(id int32, typ ir.Type, dst, a, b, c int32, dstVal, aVal, bVal, cVal uint64) {
	ta := r.ensure(a, typ, aVal)
	tb := r.ensure(b, typ, bVal)
	tc := r.ensure(c, typ, cVal)
	d := &r.cur().temps[dst]
	undef := ta.undef || tb.undef || tc.undef
	if !undef {
		var prod big.Float
		prod.SetPrec(2*r.ctx.Prec()).Mul(&ta.real, &tb.real)
		d.real.SetPrec(r.ctx.Prec()).Add(&prod, &tc.real)
	}
	d.undef = undef
	d.trace = r.newTrace(id, "fma", ta.trace, tb.trace, tc.trace)
	d.infl = ta.infl.union(tb.infl, id).union(tc.infl, -1)
	r.updateRepr(id, d.trace)
	d.written = true
	r.totalOps++
}

// QClear resets the shadow quires.
func (r *Runtime) QClear(typ ir.Type) {
	for _, q := range r.quires {
		q.SetInt64(0)
	}
}

func (r *Runtime) squire(typ ir.Type) *big.Float {
	q, ok := r.quires[typ]
	if !ok {
		q = new(big.Float).SetPrec(768)
		r.quires[typ] = q
	}
	return q
}

// QAdd mirrors quire accumulation.
func (r *Runtime) QAdd(typ ir.Type, a int32, aVal uint64, negate bool) {
	q := r.squire(typ)
	ta := r.ensure(a, typ, aVal)
	if negate {
		q.Sub(q, &ta.real)
	} else {
		q.Add(q, &ta.real)
	}
}

// QMAdd mirrors fused multiply-accumulate.
func (r *Runtime) QMAdd(typ ir.Type, a, b int32, aVal, bVal uint64, negate bool) {
	q := r.squire(typ)
	ta := r.ensure(a, typ, aVal)
	tb := r.ensure(b, typ, bVal)
	var prod big.Float
	prod.SetPrec(768).Mul(&ta.real, &tb.real)
	if negate {
		q.Sub(q, &prod)
	} else {
		q.Add(q, &prod)
	}
}

// QVal binds the rounded quire value.
func (r *Runtime) QVal(id int32, typ ir.Type, dst int32, bits uint64) {
	d := &r.cur().temps[dst]
	r.ctx.Copy(&d.real, r.squire(typ))
	d.trace = r.newTrace(id, "qval")
	d.written = true
	r.totalOps++
}
