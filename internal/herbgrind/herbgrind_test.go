package herbgrind

import (
	"testing"

	"positdebug/internal/codegen"
	"positdebug/internal/instrument"
	"positdebug/internal/interp"
	"positdebug/internal/ir"
	"positdebug/internal/lang"
	"positdebug/internal/posit"
)

func build(t *testing.T, src string) (*Runtime, *interp.Machine) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	chk, err := lang.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := codegen.Compile(chk)
	if err != nil {
		t.Fatal(err)
	}
	inst := instrument.Instrument(mod, instrument.Options{})
	rt := New(inst, 128)
	m := interp.New(inst)
	m.Hooks = rt
	return rt, m
}

// TestTraceGrowthLinear: the defining property — trace metadata grows
// with the dynamic instruction count.
func TestTraceGrowthLinear(t *testing.T) {
	rt, m := build(t, `
func main(n: i64): f64 {
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < n; i += 1) {
		s = s + 0.5;
	}
	return s;
}
`)
	if _, err := m.Run("main", 50); err != nil {
		t.Fatal(err)
	}
	small := rt.TraceNodes()
	if _, err := m.Run("main", 500); err != nil {
		t.Fatal(err)
	}
	large := rt.TraceNodes()
	if small == 0 || large < small*8 {
		t.Fatalf("trace nodes %d → %d; expected ~10× growth", small, large)
	}
	if rt.TotalOps() == 0 {
		t.Fatal("ops not counted")
	}
}

// TestInfluencePropagation: influence sets accumulate through arithmetic
// and survive stores/loads.
func TestInfluencePropagation(t *testing.T) {
	rt, m := build(t, `
var g: f64;

func main(): f64 {
	var a: f64 = 1.5;
	var b: f64 = 2.5;
	g = a * b;
	var c: f64 = g + a;
	return c;
}
`)
	if _, err := m.Run("main"); err != nil {
		t.Fatal(err)
	}
	// The final addition's influence set must contain at least the two
	// constants, the multiplication and the addition itself.
	found := 0
	for _, f := range rt.frames {
		_ = f
	}
	// Frames are gone after Run; inspect via memory metadata of g instead.
	for _, mm := range rt.mem {
		if len(mm.infl) >= 2 {
			found++
		}
	}
	if found == 0 {
		t.Fatal("no influence sets of size ≥ 2 reached memory")
	}
}

// TestReprAntiUnification: repeated executions of the same static
// instruction generalize into one representative expression.
func TestReprAntiUnification(t *testing.T) {
	rt, m := build(t, `
func main(): f64 {
	var s: f64 = 0.0;
	for (var i: i64 = 0; i < 10; i += 1) {
		s = s + 1.0;       // same static add, ten dynamic executions
	}
	return s;
}
`)
	if _, err := m.Run("main"); err != nil {
		t.Fatal(err)
	}
	if rt.ReprSize() == 0 {
		t.Fatal("no representative expressions built")
	}
	// The accumulator add's representative must have become generalized:
	// its left child alternates between "value/const" (iteration 1) and
	// the add itself (later iterations) → anti-unified to "?".
	generalized := false
	for _, n := range rt.repr {
		if hasOp(n, "?") {
			generalized = true
		}
	}
	if !generalized {
		t.Fatal("anti-unification never generalized a loop-carried operand")
	}
}

func hasOp(n *TraceNode, op string) bool {
	if n == nil {
		return false
	}
	if n.Op == op {
		return true
	}
	for _, k := range n.Args {
		if hasOp(k, op) {
			return true
		}
	}
	return false
}

// TestAntiUnifyBudget: deep traces are truncated, not walked unboundedly.
// (The budget bounds the walk; truncation leaves add at most one node per
// exhausted branch.)
func TestAntiUnifyBudget(t *testing.T) {
	deep := &TraceNode{Op: "v"}
	for i := 0; i < 1000; i++ {
		deep = &TraceNode{Op: "+", Args: []*TraceNode{deep, {Op: "v"}}}
	}
	budget := 16
	out := antiUnify(nil, deep, &budget)
	if sz := treeSize(out); sz > 40 {
		t.Fatalf("budget ignored: %d nodes for a 2001-node input", sz)
	}
}

// TestQuireMirroring: the Herbgrind runtime mirrors quire ops so fused
// programs still shadow correctly.
func TestQuireMirroring(t *testing.T) {
	_, m := build(t, `
func main(): p32 {
	qclear();
	qmadd(2.0, 3.0);
	qadd(1.0);
	qsub(0.5);
	qmsub(1.0, 0.25);
	return qround_p32();
}
`)
	v, err := m.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if got := ir.P32.PositConfig().ToFloat64(posit.Bits(v)); got != 6.25 {
		t.Fatalf("fused result %v, want 6.25", got)
	}
}
