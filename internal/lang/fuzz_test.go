package lang

import (
	"os"
	"testing"
)

// seedCorpus feeds both fuzz targets: the repo's example program plus
// inline seeds covering every syntactic construct, so the fuzzer mutates
// from real shapes instead of rediscovering the grammar byte by byte.
func seedCorpus(f *testing.F) {
	if src, err := os.ReadFile("../../testdata/rootcount.pcl"); err == nil {
		f.Add(string(src))
	}
	seeds := []string{
		"",
		"func main(): i64 { return 0; }",
		"var A: [4]f64;\nfunc f(i: i64): f64 { return A[i]; }",
		"func f(a: p32, b: p32): p32 { var t: p32 = a * b - 4.0; return t; }",
		"func f(n: i64): i64 { if (n <= 1) { return 1; } return n * f(n - 1); }",
		"func f(): i64 { var i: i64 = 0; while (i < 10) { i += 1; } return i; }",
		"func f(): i64 { for (var i: i64 = 0; i < 4; i += 1) { print(i); } return 0; }",
		"func f(a: f32): f64 { return a as f64; }",
		"func f(a: i64, b: i64): bool { return a < b && !(a == b) || a > b; }",
		"func f(): p16 { return 1.5; }",
		"// comment\nfunc f(): i64 { return -9223372036854775808; }",
		"func f(): f64 { return 1.0e308 + 0x10; }",
		"var G: i64;\nfunc f(): i64 { G = 3; return G % 2; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
}

// FuzzParse: the parser must reject arbitrary input with an error, never a
// panic — the service compiles untrusted request bodies.
func FuzzParse(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = Parse(src)
	})
}

// FuzzTypeCheck: anything the parser accepts must flow through the type
// checker without panicking.
func FuzzTypeCheck(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		_, _ = Check(prog)
	})
}
