package lang

import (
	"fmt"
	"strings"
)

// Lexer tokenizes PCL source text. Comments run from // to end of line.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Tokens lexes the entire input, returning the token stream terminated by
// an EOF token, or the first lexical error.
func Tokens(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpace() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	l.skipSpace()
	pos := Pos{l.line, l.col}
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isDigit(c) || (c == '.' && isDigit(l.peek2())):
		return l.number(pos)
	case isAlpha(c):
		start := l.off
		for l.off < len(l.src) && (isAlpha(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		text := l.src[start:l.off]
		if k, ok := keywords[text]; ok {
			return Token{Kind: k, Text: text, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: pos}, nil
	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.off >= len(l.src) {
				return Token{}, fmt.Errorf("%s: unterminated string literal", pos)
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if l.off >= len(l.src) {
					return Token{}, fmt.Errorf("%s: unterminated escape", pos)
				}
				switch e := l.advance(); e {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '"', '\\':
					sb.WriteByte(e)
				default:
					return Token{}, fmt.Errorf("%s: unknown escape \\%c", pos, e)
				}
				continue
			}
			sb.WriteByte(ch)
		}
		return Token{Kind: STRING, Text: sb.String(), Pos: pos}, nil
	}
	// Operators and punctuation.
	two := func(k Kind, text string) (Token, error) {
		l.advance()
		l.advance()
		return Token{Kind: k, Text: text, Pos: pos}, nil
	}
	one := func(k Kind) (Token, error) {
		l.advance()
		return Token{Kind: k, Text: string(c), Pos: pos}, nil
	}
	switch c {
	case '(':
		return one(LParen)
	case ')':
		return one(RParen)
	case '{':
		return one(LBrace)
	case '}':
		return one(RBrace)
	case '[':
		return one(LBrack)
	case ']':
		return one(RBrack)
	case ',':
		return one(Comma)
	case ';':
		return one(Semi)
	case ':':
		return one(Colon)
	case '+':
		if l.peek2() == '=' {
			return two(PlusAssign, "+=")
		}
		return one(Plus)
	case '-':
		if l.peek2() == '=' {
			return two(MinusAssign, "-=")
		}
		return one(Minus)
	case '*':
		if l.peek2() == '=' {
			return two(StarAssign, "*=")
		}
		return one(Star)
	case '/':
		if l.peek2() == '=' {
			return two(SlashAssign, "/=")
		}
		return one(Slash)
	case '%':
		return one(Percent)
	case '!':
		if l.peek2() == '=' {
			return two(Ne, "!=")
		}
		return one(Not)
	case '=':
		if l.peek2() == '=' {
			return two(Eq, "==")
		}
		return one(Assign)
	case '<':
		if l.peek2() == '=' {
			return two(Le, "<=")
		}
		return one(Lt)
	case '>':
		if l.peek2() == '=' {
			return two(Ge, ">=")
		}
		return one(Gt)
	case '&':
		if l.peek2() == '&' {
			return two(AndAnd, "&&")
		}
	case '|':
		if l.peek2() == '|' {
			return two(OrOr, "||")
		}
	}
	return Token{}, fmt.Errorf("%s: unexpected character %q", pos, string(c))
}

func (l *Lexer) number(pos Pos) (Token, error) {
	start := l.off
	kind := INT
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' {
		kind = FLOAT
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	if c := l.peek(); c == 'e' || c == 'E' {
		kind = FLOAT
		l.advance()
		if c := l.peek(); c == '+' || c == '-' {
			l.advance()
		}
		if !isDigit(l.peek()) {
			return Token{}, fmt.Errorf("%s: malformed exponent", pos)
		}
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	}
	return Token{Kind: kind, Text: l.src[start:l.off], Pos: pos}, nil
}
