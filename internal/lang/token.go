// Package lang implements the front end for PCL, the small C-like numerical
// language this reproduction instruments: a lexer, a recursive-descent
// parser and a type checker. PCL plays the role that C played for the
// paper's LLVM-based PositDebug prototype — big enough to express the
// PolyBench kernels, the SPEC-like applications and every case study, small
// enough to compile to the register IR in internal/ir.
//
// Scalar types are i64, bool, f32, f64 and the posits p8 ⟨8,0⟩, p16 ⟨16,1⟩
// and p32 ⟨32,2⟩; fixed-size one- and two-dimensional arrays hold scalars.
// Type names double as conversion functions (p32(x), i64(x), …), and the
// builtins sqrt, abs, print and the quire operations (qclear, qadd, qmadd,
// qval_p32, …) surface the posit standard's fused arithmetic.
package lang

import "fmt"

// Kind enumerates token kinds.
type Kind uint8

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INT    // integer literal
	FLOAT  // floating literal
	STRING // string literal (print only)

	// Keywords.
	KwVar
	KwFunc
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwTrue
	KwFalse

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBrack
	RBrack
	Comma
	Semi
	Colon
	Assign     // =
	PlusAssign // +=
	MinusAssign
	StarAssign
	SlashAssign
	Plus
	Minus
	Star
	Slash
	Percent
	Not
	Eq // ==
	Ne
	Lt
	Le
	Gt
	Ge
	AndAnd
	OrOr
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INT: "int literal", FLOAT: "float literal",
	STRING: "string literal", KwVar: "var", KwFunc: "func", KwIf: "if",
	KwElse: "else", KwWhile: "while", KwFor: "for", KwReturn: "return",
	KwBreak: "break", KwContinue: "continue", KwTrue: "true", KwFalse: "false",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}", LBrack: "[",
	RBrack: "]", Comma: ",", Semi: ";", Colon: ":", Assign: "=",
	PlusAssign: "+=", MinusAssign: "-=", StarAssign: "*=", SlashAssign: "/=",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%", Not: "!",
	Eq: "==", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
	AndAnd: "&&", OrOr: "||",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

var keywords = map[string]Kind{
	"var": KwVar, "func": KwFunc, "if": KwIf, "else": KwElse,
	"while": KwWhile, "for": KwFor, "return": KwReturn,
	"break": KwBreak, "continue": KwContinue, "true": KwTrue, "false": KwFalse,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexed token with its source text and position.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}
