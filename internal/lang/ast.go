package lang

import (
	"fmt"
	"strings"
)

// TypeKind enumerates the scalar types of the language.
type TypeKind uint8

// Scalar type kinds. The posit kinds correspond to the standard
// configurations ⟨8,0⟩, ⟨16,1⟩ and ⟨32,2⟩.
const (
	TVoid TypeKind = iota
	TI64
	TBool
	TF32
	TF64
	TP8
	TP16
	TP32
)

// Type is a language-level type: a scalar or a 1-/2-dimensional array of a
// scalar. Dims is empty for scalars.
type Type struct {
	Kind TypeKind
	Dims []int // array dimensions, outermost first
}

// Scalar returns a non-array type of kind k.
func Scalar(k TypeKind) Type { return Type{Kind: k} }

// IsArray reports whether the type has array dimensions.
func (t Type) IsArray() bool { return len(t.Dims) > 0 }

// Equal reports whether two types are identical (same kind and dimensions).
func (t Type) Equal(u Type) bool {
	if t.Kind != u.Kind || len(t.Dims) != len(u.Dims) {
		return false
	}
	for i := range t.Dims {
		if t.Dims[i] != u.Dims[i] {
			return false
		}
	}
	return true
}

// IsNumeric reports whether the scalar kind is a float or posit type —
// the types PositDebug/FPSanitizer shadow.
func (t Type) IsNumeric() bool {
	return !t.IsArray() && (t.Kind == TF32 || t.Kind == TF64 || t.Kind == TP8 || t.Kind == TP16 || t.Kind == TP32)
}

// IsPosit reports whether the scalar kind is a posit type.
func (t Type) IsPosit() bool {
	return !t.IsArray() && (t.Kind == TP8 || t.Kind == TP16 || t.Kind == TP32)
}

// Elem returns the scalar element type of an array type.
func (t Type) Elem() Type { return Type{Kind: t.Kind} }

var typeNames = map[TypeKind]string{
	TVoid: "void", TI64: "i64", TBool: "bool", TF32: "f32", TF64: "f64",
	TP8: "p8", TP16: "p16", TP32: "p32",
}

// TypeKindByName maps a source-level type name to its kind.
var TypeKindByName = map[string]TypeKind{
	"i64": TI64, "bool": TBool, "f32": TF32, "f64": TF64,
	"p8": TP8, "p16": TP16, "p32": TP32,
}

func (t Type) String() string {
	var sb strings.Builder
	for _, d := range t.Dims {
		fmt.Fprintf(&sb, "[%d]", d)
	}
	sb.WriteString(typeNames[t.Kind])
	return sb.String()
}

// Program is a parsed compilation unit.
type Program struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
}

// VarDecl declares a global or local variable, optionally initialized
// (scalars only).
type VarDecl struct {
	Name string
	Type Type
	Init Expr // nil if absent
	Pos  Pos
}

// Param is a scalar function parameter.
type Param struct {
	Name string
	Type Type
	Pos  Pos
}

// FuncDecl declares a function.
type FuncDecl struct {
	Name   string
	Params []Param
	Ret    Type // TVoid scalar when absent
	Body   *BlockStmt
	Pos    Pos
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmtNode() }

// BlockStmt is a brace-delimited statement list with its own scope.
type BlockStmt struct {
	Stmts []Stmt
	Pos   Pos
}

// DeclStmt is a local variable declaration.
type DeclStmt struct{ Decl *VarDecl }

// AssignStmt stores the value of Rhs into the lvalue Lhs (an Ident or an
// IndexExpr). Compound assignments are desugared by the parser.
type AssignStmt struct {
	Lhs Expr
	Rhs Expr
	Pos Pos
}

// ExprStmt evaluates an expression for effect (a call).
type ExprStmt struct {
	X   Expr
	Pos Pos
}

// IfStmt with optional else (either a BlockStmt or another IfStmt).
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else Stmt // nil, *BlockStmt or *IfStmt
	Pos  Pos
}

// WhileStmt loops while Cond holds.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
	Pos  Pos
}

// ForStmt is the C-style three-clause loop; any clause may be nil.
type ForStmt struct {
	Init Stmt // *AssignStmt or *DeclStmt or nil
	Cond Expr // nil means true
	Post Stmt // *AssignStmt or nil
	Body *BlockStmt
	Pos  Pos
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	X   Expr // nil for void
	Pos Pos
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt jumps to the next iteration of the innermost loop.
type ContinueStmt struct{ Pos Pos }

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// Expr is implemented by all expression nodes. The checker records the
// resolved type on each node.
type Expr interface {
	exprNode()
	// TypeOf returns the type assigned during checking.
	TypeOf() Type
	// Position returns the source position of the expression.
	Position() Pos
}

type exprBase struct {
	typ Type
	Pos Pos
}

func (b *exprBase) exprNode()      {}
func (b *exprBase) TypeOf() Type   { return b.typ }
func (b *exprBase) Position() Pos  { return b.Pos }
func (b *exprBase) setType(t Type) { b.typ = t }

// IntLit is an integer literal; the checker may adapt it to any numeric
// type from context (like Go's untyped constants).
type IntLit struct {
	exprBase
	Value int64
}

// FloatLit is a floating literal, adaptable to f32/f64/posit context.
type FloatLit struct {
	exprBase
	Value float64
	Text  string
}

// BoolLit is true or false.
type BoolLit struct {
	exprBase
	Value bool
}

// StringLit appears only as a print argument.
type StringLit struct {
	exprBase
	Value string
}

// Ident references a variable or parameter.
type Ident struct {
	exprBase
	Name string
}

// IndexExpr indexes an array variable: A[i] or A[i][j].
type IndexExpr struct {
	exprBase
	Arr     *Ident
	Indices []Expr
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	exprBase
	Op Kind // Minus or Not
	X  Expr
}

// BinaryExpr is a binary operation, including comparisons and && / ||.
type BinaryExpr struct {
	exprBase
	Op   Kind
	L, R Expr
}

// CallExpr is a user-function call, a builtin call, or a conversion when
// Name is a type name.
type CallExpr struct {
	exprBase
	Name string
	Args []Expr
	// Resolved by the checker:
	IsCast    bool
	IsBuiltin bool
	Builtin   Builtin
	Decl      *FuncDecl
}

// Builtin enumerates intrinsic functions.
type Builtin uint8

// Builtins of the language. The quire family operates on an implicit
// per-execution quire register, mirroring the fused-operation support that
// the posit standard mandates (used by the Simpson's-rule case study).
const (
	BNone   Builtin = iota
	BSqrt           // sqrt(x) — typed by its numeric argument
	BAbs            // abs(x)
	BPrint          // print(x) — any scalar, or a string literal
	BQClear         // qclear() — zero the quire
	BQAdd           // qadd(x) — quire += x, exact
	BQMAdd          // qmadd(x, y) — quire += x·y, exact
	BQSub           // qsub(x) — quire −= x, exact
	BQMSub          // qmsub(x, y) — quire −= x·y, exact
	BQRound         // qround_<T>() — round quire to posit type T
	BFMA            // fma(a, b, c) — a·b + c with a single rounding
)

// BuiltinByName maps source names to builtins; qround has one entry per
// result type (resolved in the checker).
var BuiltinByName = map[string]Builtin{
	"sqrt": BSqrt, "abs": BAbs, "print": BPrint, "fma": BFMA,
	"qclear": BQClear, "qadd": BQAdd, "qmadd": BQMAdd,
	"qsub": BQSub, "qmsub": BQMSub,
	"qround_p8": BQRound, "qround_p16": BQRound, "qround_p32": BQRound,
}

func (*IntLit) isLit()   {}
func (*FloatLit) isLit() {}
