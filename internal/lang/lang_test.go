package lang

import (
	"math/rand"
	"strings"
	"testing"
)

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

const rootCountSrc = `
// Figure 2 of the paper.
func rootcount(a: p32, b: p32, c: p32): i64 {
	var t1: p32 = b * b;
	var t2: p32 = 4.0 * a * c;
	var t3: p32 = t1 - t2;
	if (t3 > 0.0) {
		return 2;
	} else if (t3 == 0.0) {
		return 1;
	}
	return 0;
}
`

func mustCheck(t *testing.T, src string) *Checked {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	chk, err := Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return chk
}

func TestParseRootCount(t *testing.T) {
	chk := mustCheck(t, rootCountSrc)
	f := chk.Funcs["rootcount"]
	if f == nil || len(f.Params) != 3 || f.Ret.Kind != TI64 {
		t.Fatalf("signature: %+v", f)
	}
	// The literal 4.0 must have adapted to p32 from context.
	decl := f.Body.Stmts[1].(*DeclStmt)
	bin := decl.Decl.Init.(*BinaryExpr)
	if bin.TypeOf().Kind != TP32 {
		t.Fatalf("4.0*a*c type = %s", bin.TypeOf())
	}
}

func TestParseArraysAndLoops(t *testing.T) {
	src := `
var A: [8][8]f64;
var x: [16]f64;
var n: i64 = 8;

func init_arrays() {
	var i: i64;
	var j: i64;
	for (i = 0; i < n; i += 1) {
		x[i] = f64(i) / 2.0;
		for (j = 0; j < n; j += 1) {
			A[i][j] = f64(i * j) + 1.0;
		}
	}
}

func trace(): f64 {
	var s: f64 = 0.0;
	var i: i64;
	for (i = 0; i < n; i += 1) {
		s += A[i][i];
	}
	return s;
}

func main(): i64 {
	init_arrays();
	print(trace());
	print("done");
	return 0;
}
`
	chk := mustCheck(t, src)
	if len(chk.Prog.Funcs) != 3 || len(chk.Prog.Globals) != 3 {
		t.Fatal("decl counts")
	}
}

func TestQuireBuiltins(t *testing.T) {
	src := `
func fdot(): p32 {
	var a: p32 = 1.5;
	var b: p32 = 2.5;
	qclear();
	qmadd(a, b);
	qadd(a);
	qsub(b);
	qmsub(b, b);
	return qround_p32();
}
`
	chk := mustCheck(t, src)
	if chk.Funcs["fdot"].Ret.Kind != TP32 {
		t.Fatal("ret type")
	}
}

func TestWhileBreakContinue(t *testing.T) {
	mustCheck(t, `
func f(): i64 {
	var i: i64 = 0;
	while (true) {
		i += 1;
		if (i % 2 == 0) { continue; }
		if (i > 10) { break; }
	}
	return i;
}`)
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undefined var", `func f(): i64 { return x; }`, "undefined variable"},
		{"undefined func", `func f() { g(); }`, "undefined function"},
		{"type mismatch", `func f(a: f64, b: p32) { a = a; b = b; var c: f64 = 0.0; c = a + f64(b); a = a + b; }`, "mismatched operand types"},
		{"assign mismatch", `func f(a: f64, b: i64) { a = b; }`, "cannot assign"},
		{"bad condition", `func f(a: i64) { if (a) { } }`, "condition must be bool"},
		{"mod floats", `func f(a: f64) { a = a % a; }`, "requires i64"},
		{"break outside loop", `func f() { break; }`, "break outside loop"},
		{"continue outside", `func f() { continue; }`, "continue outside loop"},
		{"void return value", `func f() { return 1; }`, "returns a value"},
		{"missing return value", `func f(): i64 { return; }`, "must return"},
		{"wrong return type", `func f(): i64 { return 1.5; }`, "returns i64, not f64"},
		{"index count", `var A: [4][4]f64; func f(): f64 { return A[1]; }`, "needs 2 indices"},
		{"index type", `var A: [4]f64; func f(a: f64): f64 { return A[a]; }`, "index must be i64"},
		{"not array", `func f(a: f64): f64 { return a[0]; }`, "not an array"},
		{"dup global", "var x: i64;\nvar x: f64;", "duplicate global"},
		{"dup param", `func f(a: i64, a: f64) { }`, "duplicate parameter"},
		{"dup local", `func f() { var a: i64; var a: f64; }`, "duplicate variable"},
		{"arity", `func g(a: i64): i64 { return a; } func f(): i64 { return g(); }`, "takes 1 arguments"},
		{"quire non-posit", `func f(a: f64) { qadd(a); }`, "requires posit"},
		{"string outside print", `func f() { var s: i64 = 0; s = s; qclear(); } func g(): i64 { return "x"; }`, "string literals"},
		{"cast to bool", `func f(a: i64): bool { return bool(a); }`, "cannot convert to bool"},
		{"sqrt of int", `func f(a: i64): i64 { return sqrt(a); }`, "requires a numeric argument"},
		{"array assign", `var A: [4]f64; var B: [4]f64; func f() { A = B; }`, "cannot assign to whole array"},
		{"builtin collision", `func sqrt(x: f64): f64 { return x; }`, "collides"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Parse(tc.src)
			if err == nil {
				_, err = Check(prog)
			}
			if err == nil {
				t.Fatalf("expected error containing %q, got success", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`func f( { }`,
		`func f() { var x i64; }`,
		`func f() { x = ; }`,
		`var A: [0]f64;`,
		`func f() { if x > 0 { } }`,
		`func f() : [4]f64 { }`,
		`func f(a: [4]f64) { }`,
		"func f() { print(\"unterminated); }",
		`func f() { x = 1e; }`,
		`@`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Fatalf("expected parse error for %q", src)
		}
	}
}

func TestLiteralAdaptation(t *testing.T) {
	chk := mustCheck(t, `
func f(x: p16): p16 {
	return x * 2.0 + 1.0;
}
func g(x: f32): f32 {
	return 3.0 * x;
}
func h(): p32 {
	var y: p32 = 2;
	return y;
}
`)
	ret := chk.Funcs["f"].Body.Stmts[0].(*ReturnStmt)
	if ret.X.TypeOf().Kind != TP16 {
		t.Fatalf("literal did not adapt to p16: %s", ret.X.TypeOf())
	}
	retg := chk.Funcs["g"].Body.Stmts[0].(*ReturnStmt)
	if retg.X.TypeOf().Kind != TF32 {
		t.Fatalf("literal did not adapt to f32: %s", retg.X.TypeOf())
	}
}

func TestNegativeLiteralFold(t *testing.T) {
	prog, err := Parse(`func f(): f64 { return -1.5e10; }`)
	if err != nil {
		t.Fatal(err)
	}
	ret := prog.Funcs[0].Body.Stmts[0].(*ReturnStmt)
	lit, ok := ret.X.(*FloatLit)
	if !ok || lit.Value != -1.5e10 {
		t.Fatalf("unary minus must fold into the literal: %T", ret.X)
	}
}

func TestTypeString(t *testing.T) {
	if got := (Type{Kind: TF64, Dims: []int{4, 8}}).String(); got != "[4][8]f64" {
		t.Fatalf("type string: %q", got)
	}
	if got := Scalar(TP32).String(); got != "p32" {
		t.Fatalf("type string: %q", got)
	}
}

func TestCompoundAssignDesugar(t *testing.T) {
	prog, err := Parse(`var A: [4]f64; func f(i: i64) { A[i] *= 2.0; }`)
	if err != nil {
		t.Fatal(err)
	}
	as := prog.Funcs[0].Body.Stmts[0].(*AssignStmt)
	bin, ok := as.Rhs.(*BinaryExpr)
	if !ok || bin.Op != Star {
		t.Fatalf("*= must desugar to multiplication, got %T", as.Rhs)
	}
	if _, err := Check(prog); err != nil {
		t.Fatal(err)
	}
}

// TestParserNeverPanics throws random mutations of valid source at the
// lexer and parser: they must return errors, never panic.
func TestParserNeverPanics(t *testing.T) {
	base := rootCountSrc
	rng := newTestRand(42)
	for i := 0; i < 3000; i++ {
		b := []byte(base)
		for k := 0; k < 1+rng.Intn(6); k++ {
			switch rng.Intn(3) {
			case 0: // mutate a byte
				b[rng.Intn(len(b))] = byte(rng.Intn(128))
			case 1: // truncate
				b = b[:rng.Intn(len(b))+1]
			case 2: // duplicate a slice
				s, e := rng.Intn(len(b)), rng.Intn(len(b))
				if s > e {
					s, e = e, s
				}
				b = append(b[:e:e], b[s:]...)
			}
			if len(b) == 0 {
				b = []byte("x")
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("parser panicked on %q: %v", b, r)
				}
			}()
			if prog, err := Parse(string(b)); err == nil {
				// Valid parses must also check without panicking.
				_, _ = Check(prog)
			}
		}()
	}
}
