package lang

import (
	"fmt"
	"strconv"
	"strings"
)

// Format renders a program back to PCL source. The output parses to an
// equivalent program; the FP→posit refactorer uses it to emit rewritten
// sources, mirroring the paper's clang-based source-to-source tool.
func Format(p *Program) string {
	var sb strings.Builder
	for _, g := range p.Globals {
		sb.WriteString("var " + g.Name + ": " + g.Type.String())
		if g.Init != nil {
			sb.WriteString(" = " + FormatExpr(g.Init))
		}
		sb.WriteString(";\n")
	}
	if len(p.Globals) > 0 {
		sb.WriteString("\n")
	}
	for i, f := range p.Funcs {
		if i > 0 {
			sb.WriteString("\n")
		}
		formatFunc(&sb, f)
	}
	return sb.String()
}

func formatFunc(sb *strings.Builder, f *FuncDecl) {
	sb.WriteString("func " + f.Name + "(")
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(p.Name + ": " + p.Type.String())
	}
	sb.WriteString(")")
	if f.Ret.Kind != TVoid {
		sb.WriteString(": " + f.Ret.String())
	}
	sb.WriteString(" ")
	formatBlock(sb, f.Body, 0)
	sb.WriteString("\n")
}

func indent(sb *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		sb.WriteString("\t")
	}
}

func formatBlock(sb *strings.Builder, b *BlockStmt, depth int) {
	sb.WriteString("{\n")
	for _, s := range b.Stmts {
		formatStmt(sb, s, depth+1)
	}
	indent(sb, depth)
	sb.WriteString("}")
}

func formatStmt(sb *strings.Builder, s Stmt, depth int) {
	switch s := s.(type) {
	case *BlockStmt:
		indent(sb, depth)
		formatBlock(sb, s, depth)
		sb.WriteString("\n")
	case *DeclStmt:
		indent(sb, depth)
		sb.WriteString(declString(s.Decl))
		sb.WriteString(";\n")
	case *AssignStmt:
		indent(sb, depth)
		sb.WriteString(FormatExpr(s.Lhs) + " = " + FormatExpr(s.Rhs) + ";\n")
	case *ExprStmt:
		indent(sb, depth)
		sb.WriteString(FormatExpr(s.X) + ";\n")
	case *IfStmt:
		indent(sb, depth)
		formatIf(sb, s, depth)
		sb.WriteString("\n")
	case *WhileStmt:
		indent(sb, depth)
		sb.WriteString("while (" + FormatExpr(s.Cond) + ") ")
		formatBlock(sb, s.Body, depth)
		sb.WriteString("\n")
	case *ForStmt:
		indent(sb, depth)
		sb.WriteString("for (")
		if s.Init != nil {
			formatSimple(sb, s.Init)
		}
		sb.WriteString("; ")
		if s.Cond != nil {
			sb.WriteString(FormatExpr(s.Cond))
		}
		sb.WriteString("; ")
		if s.Post != nil {
			formatSimple(sb, s.Post)
		}
		sb.WriteString(") ")
		formatBlock(sb, s.Body, depth)
		sb.WriteString("\n")
	case *ReturnStmt:
		indent(sb, depth)
		if s.X != nil {
			sb.WriteString("return " + FormatExpr(s.X) + ";\n")
		} else {
			sb.WriteString("return;\n")
		}
	case *BreakStmt:
		indent(sb, depth)
		sb.WriteString("break;\n")
	case *ContinueStmt:
		indent(sb, depth)
		sb.WriteString("continue;\n")
	}
}

func formatIf(sb *strings.Builder, s *IfStmt, depth int) {
	sb.WriteString("if (" + FormatExpr(s.Cond) + ") ")
	formatBlock(sb, s.Then, depth)
	switch e := s.Else.(type) {
	case nil:
	case *IfStmt:
		sb.WriteString(" else ")
		formatIf(sb, e, depth)
	case *BlockStmt:
		sb.WriteString(" else ")
		formatBlock(sb, e, depth)
	}
}

// formatSimple renders the init/post clauses of a for loop (no newline or
// semicolon).
func formatSimple(sb *strings.Builder, s Stmt) {
	switch s := s.(type) {
	case *DeclStmt:
		sb.WriteString(declString(s.Decl))
	case *AssignStmt:
		sb.WriteString(FormatExpr(s.Lhs) + " = " + FormatExpr(s.Rhs))
	case *ExprStmt:
		sb.WriteString(FormatExpr(s.X))
	}
}

func declString(d *VarDecl) string {
	s := "var " + d.Name + ": " + d.Type.String()
	if d.Init != nil {
		s += " = " + FormatExpr(d.Init)
	}
	return s
}

// FormatExpr renders one expression with explicit parentheses around
// nested binary operations (safe, if slightly chatty).
func FormatExpr(e Expr) string {
	switch e := e.(type) {
	case *IntLit:
		return strconv.FormatInt(e.Value, 10)
	case *FloatLit:
		if e.Text != "" {
			return e.Text
		}
		return strconv.FormatFloat(e.Value, 'g', -1, 64)
	case *BoolLit:
		return strconv.FormatBool(e.Value)
	case *StringLit:
		return strconv.Quote(e.Value)
	case *Ident:
		return e.Name
	case *IndexExpr:
		var sb strings.Builder
		sb.WriteString(e.Arr.Name)
		for _, ix := range e.Indices {
			fmt.Fprintf(&sb, "[%s]", FormatExpr(ix))
		}
		return sb.String()
	case *UnaryExpr:
		op := "-"
		if e.Op == Not {
			op = "!"
		}
		return op + maybeParen(e.X)
	case *BinaryExpr:
		return maybeParen(e.L) + " " + opSourceText(e.Op) + " " + maybeParen(e.R)
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = FormatExpr(a)
		}
		return e.Name + "(" + strings.Join(args, ", ") + ")"
	default:
		return "?"
	}
}

func maybeParen(e Expr) string {
	if _, ok := e.(*BinaryExpr); ok {
		return "(" + FormatExpr(e) + ")"
	}
	return FormatExpr(e)
}

func opSourceText(k Kind) string {
	switch k {
	case Plus:
		return "+"
	case Minus:
		return "-"
	case Star:
		return "*"
	case Slash:
		return "/"
	case Percent:
		return "%"
	case Eq:
		return "=="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case AndAnd:
		return "&&"
	case OrOr:
		return "||"
	default:
		return "?"
	}
}
