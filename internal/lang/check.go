package lang

import (
	"fmt"
	"strings"
)

// Symbol is a resolved variable: a global, a parameter or a local. The
// checker attaches one to every Ident; codegen assigns storage by symbol
// identity.
type Symbol struct {
	Name   string
	Type   Type
	Global bool
	Param  bool
}

// Checked carries the results of type checking alongside the program.
type Checked struct {
	Prog    *Program
	Funcs   map[string]*FuncDecl
	Symbols map[*Ident]*Symbol
	// DeclSym maps each declaration (global or local) to its symbol.
	DeclSym map[*VarDecl]*Symbol
	// ParamSym maps "func/param" keys to symbols.
	ParamSym map[*FuncDecl][]*Symbol
}

type checker struct {
	out     *Checked
	globals map[string]*Symbol
	scopes  []map[string]*Symbol
	fn      *FuncDecl
	loops   int
}

// Check resolves names and types over the parsed program.
func Check(prog *Program) (*Checked, error) {
	c := &checker{
		out: &Checked{
			Prog:     prog,
			Funcs:    map[string]*FuncDecl{},
			Symbols:  map[*Ident]*Symbol{},
			DeclSym:  map[*VarDecl]*Symbol{},
			ParamSym: map[*FuncDecl][]*Symbol{},
		},
		globals: map[string]*Symbol{},
	}
	for _, g := range prog.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return nil, fmt.Errorf("%s: duplicate global %q", g.Pos, g.Name)
		}
		if g.Init != nil {
			if g.Type.IsArray() {
				return nil, fmt.Errorf("%s: array globals cannot have initializers", g.Pos)
			}
			if _, err := c.expr(g.Init, g.Type); err != nil {
				return nil, err
			}
			if !isLiteral(g.Init) {
				return nil, fmt.Errorf("%s: global initializers must be literals", g.Pos)
			}
		}
		sym := &Symbol{Name: g.Name, Type: g.Type, Global: true}
		c.globals[g.Name] = sym
		c.out.DeclSym[g] = sym
	}
	for _, f := range prog.Funcs {
		if _, dup := c.out.Funcs[f.Name]; dup {
			return nil, fmt.Errorf("%s: duplicate function %q", f.Pos, f.Name)
		}
		if _, isType := TypeKindByName[f.Name]; isType || BuiltinByName[f.Name] != BNone {
			return nil, fmt.Errorf("%s: function name %q collides with a builtin", f.Pos, f.Name)
		}
		c.out.Funcs[f.Name] = f
	}
	for _, f := range prog.Funcs {
		if err := c.checkFunc(f); err != nil {
			return nil, err
		}
	}
	return c.out, nil
}

func isLiteral(e Expr) bool {
	switch e.(type) {
	case *IntLit, *FloatLit, *BoolLit:
		return true
	}
	return false
}

func (c *checker) checkFunc(f *FuncDecl) error {
	c.fn = f
	c.scopes = []map[string]*Symbol{{}}
	var psyms []*Symbol
	for _, p := range f.Params {
		if _, dup := c.scopes[0][p.Name]; dup {
			return fmt.Errorf("%s: duplicate parameter %q", p.Pos, p.Name)
		}
		sym := &Symbol{Name: p.Name, Type: p.Type, Param: true}
		c.scopes[0][p.Name] = sym
		psyms = append(psyms, sym)
	}
	c.out.ParamSym[f] = psyms
	return c.block(f.Body)
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return c.globals[name]
}

func (c *checker) block(b *BlockStmt) error {
	c.push()
	defer c.pop()
	for _, s := range b.Stmts {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) stmt(s Stmt) error {
	switch s := s.(type) {
	case *BlockStmt:
		return c.block(s)
	case *DeclStmt:
		d := s.Decl
		top := c.scopes[len(c.scopes)-1]
		if _, dup := top[d.Name]; dup {
			return fmt.Errorf("%s: duplicate variable %q", d.Pos, d.Name)
		}
		if d.Init != nil {
			if d.Type.IsArray() {
				return fmt.Errorf("%s: array locals cannot have initializers", d.Pos)
			}
			t, err := c.expr(d.Init, d.Type)
			if err != nil {
				return err
			}
			if !t.Equal(d.Type) {
				return fmt.Errorf("%s: cannot initialize %s with %s", d.Pos, d.Type, t)
			}
		}
		sym := &Symbol{Name: d.Name, Type: d.Type}
		top[d.Name] = sym
		c.out.DeclSym[d] = sym
		return nil
	case *AssignStmt:
		lt, err := c.lvalue(s.Lhs)
		if err != nil {
			return err
		}
		rt, err := c.expr(s.Rhs, lt)
		if err != nil {
			return err
		}
		if !rt.Equal(lt) {
			return fmt.Errorf("%s: cannot assign %s to %s", s.Pos, rt, lt)
		}
		return nil
	case *ExprStmt:
		_, err := c.expr(s.X, Scalar(TVoid))
		return err
	case *IfStmt:
		if err := c.condition(s.Cond, s.Pos); err != nil {
			return err
		}
		if err := c.block(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.stmt(s.Else)
		}
		return nil
	case *WhileStmt:
		if err := c.condition(s.Cond, s.Pos); err != nil {
			return err
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.block(s.Body)
	case *ForStmt:
		c.push()
		defer c.pop()
		if s.Init != nil {
			if err := c.stmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := c.condition(s.Cond, s.Pos); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := c.stmt(s.Post); err != nil {
				return err
			}
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.block(s.Body)
	case *ReturnStmt:
		if c.fn.Ret.Kind == TVoid {
			if s.X != nil {
				return fmt.Errorf("%s: void function %q returns a value", s.Pos, c.fn.Name)
			}
			return nil
		}
		if s.X == nil {
			return fmt.Errorf("%s: function %q must return %s", s.Pos, c.fn.Name, c.fn.Ret)
		}
		t, err := c.expr(s.X, c.fn.Ret)
		if err != nil {
			return err
		}
		if !t.Equal(c.fn.Ret) {
			return fmt.Errorf("%s: function %q returns %s, not %s", s.Pos, c.fn.Name, c.fn.Ret, t)
		}
		return nil
	case *BreakStmt:
		if c.loops == 0 {
			return fmt.Errorf("%s: break outside loop", s.Pos)
		}
		return nil
	case *ContinueStmt:
		if c.loops == 0 {
			return fmt.Errorf("%s: continue outside loop", s.Pos)
		}
		return nil
	}
	return fmt.Errorf("unhandled statement %T", s)
}

func (c *checker) condition(e Expr, pos Pos) error {
	t, err := c.expr(e, Scalar(TBool))
	if err != nil {
		return err
	}
	if t.Kind != TBool || t.IsArray() {
		return fmt.Errorf("%s: condition must be bool, found %s", pos, t)
	}
	return nil
}

// lvalue checks an assignable expression and returns its scalar type.
func (c *checker) lvalue(e Expr) (Type, error) {
	switch e := e.(type) {
	case *Ident:
		t, err := c.expr(e, Scalar(TVoid))
		if err != nil {
			return Type{}, err
		}
		if t.IsArray() {
			return Type{}, fmt.Errorf("%s: cannot assign to whole array %q", e.Position(), e.Name)
		}
		return t, nil
	case *IndexExpr:
		return c.expr(e, Scalar(TVoid))
	default:
		return Type{}, fmt.Errorf("%s: not an assignable expression", e.Position())
	}
}

// expr type-checks e with an optional contextual hint used to adapt untyped
// literals (hint Kind TVoid means no expectation).
func (c *checker) expr(e Expr, hint Type) (Type, error) {
	switch e := e.(type) {
	case *IntLit:
		t := Scalar(TI64)
		if !hint.IsArray() && (hint.IsNumeric() || hint.Kind == TI64) {
			t = Scalar(hint.Kind)
		}
		e.setType(t)
		return t, nil
	case *FloatLit:
		t := Scalar(TF64)
		if hint.IsNumeric() {
			t = Scalar(hint.Kind)
		}
		e.setType(t)
		return t, nil
	case *BoolLit:
		e.setType(Scalar(TBool))
		return e.TypeOf(), nil
	case *StringLit:
		return Type{}, fmt.Errorf("%s: string literals are only allowed in print", e.Position())
	case *Ident:
		sym := c.lookup(e.Name)
		if sym == nil {
			return Type{}, fmt.Errorf("%s: undefined variable %q", e.Position(), e.Name)
		}
		c.out.Symbols[e] = sym
		e.setType(sym.Type)
		return sym.Type, nil
	case *IndexExpr:
		sym := c.lookup(e.Arr.Name)
		if sym == nil {
			return Type{}, fmt.Errorf("%s: undefined array %q", e.Position(), e.Arr.Name)
		}
		c.out.Symbols[e.Arr] = sym
		e.Arr.setType(sym.Type)
		if !sym.Type.IsArray() {
			return Type{}, fmt.Errorf("%s: %q is not an array", e.Position(), e.Arr.Name)
		}
		if len(e.Indices) != len(sym.Type.Dims) {
			return Type{}, fmt.Errorf("%s: %q needs %d indices, found %d",
				e.Position(), e.Arr.Name, len(sym.Type.Dims), len(e.Indices))
		}
		for _, ix := range e.Indices {
			t, err := c.expr(ix, Scalar(TI64))
			if err != nil {
				return Type{}, err
			}
			if t.Kind != TI64 || t.IsArray() {
				return Type{}, fmt.Errorf("%s: array index must be i64, found %s", ix.Position(), t)
			}
		}
		e.setType(sym.Type.Elem())
		return e.TypeOf(), nil
	case *UnaryExpr:
		if e.Op == Not {
			t, err := c.expr(e.X, Scalar(TBool))
			if err != nil {
				return Type{}, err
			}
			if t.Kind != TBool {
				return Type{}, fmt.Errorf("%s: ! requires bool, found %s", e.Position(), t)
			}
			e.setType(t)
			return t, nil
		}
		t, err := c.expr(e.X, hint)
		if err != nil {
			return Type{}, err
		}
		if t.Kind != TI64 && !t.IsNumeric() {
			return Type{}, fmt.Errorf("%s: unary - requires a numeric type, found %s", e.Position(), t)
		}
		e.setType(t)
		return t, nil
	case *BinaryExpr:
		return c.binary(e, hint)
	case *CallExpr:
		return c.call(e, hint)
	}
	return Type{}, fmt.Errorf("unhandled expression %T", e)
}

func (c *checker) binary(e *BinaryExpr, hint Type) (Type, error) {
	switch e.Op {
	case AndAnd, OrOr:
		for _, side := range []Expr{e.L, e.R} {
			t, err := c.expr(side, Scalar(TBool))
			if err != nil {
				return Type{}, err
			}
			if t.Kind != TBool {
				return Type{}, fmt.Errorf("%s: logical operator requires bool, found %s", e.Position(), t)
			}
		}
		e.setType(Scalar(TBool))
		return e.TypeOf(), nil
	}
	// Arithmetic and comparisons: operands must have a common scalar type;
	// literals adapt to the non-literal side.
	opHint := hint
	if e.Op == Lt || e.Op == Le || e.Op == Gt || e.Op == Ge || e.Op == Eq || e.Op == Ne {
		opHint = Scalar(TVoid)
	}
	var lt, rt Type
	var err error
	if isLiteral(e.L) && !isLiteral(e.R) {
		rt, err = c.expr(e.R, opHint)
		if err != nil {
			return Type{}, err
		}
		lt, err = c.expr(e.L, rt)
	} else {
		lt, err = c.expr(e.L, opHint)
		if err != nil {
			return Type{}, err
		}
		rt, err = c.expr(e.R, lt)
	}
	if err != nil {
		return Type{}, err
	}
	if !lt.Equal(rt) {
		return Type{}, fmt.Errorf("%s: mismatched operand types %s and %s (insert an explicit cast)",
			e.Position(), lt, rt)
	}
	if lt.IsArray() {
		return Type{}, fmt.Errorf("%s: cannot operate on whole arrays", e.Position())
	}
	switch e.Op {
	case Plus, Minus, Star, Slash:
		if lt.Kind != TI64 && !lt.IsNumeric() {
			return Type{}, fmt.Errorf("%s: operator %s requires numeric operands, found %s", e.Position(), e.Op, lt)
		}
		e.setType(lt)
	case Percent:
		if lt.Kind != TI64 {
			return Type{}, fmt.Errorf("%s: %% requires i64 operands, found %s", e.Position(), lt)
		}
		e.setType(lt)
	case Lt, Le, Gt, Ge:
		if lt.Kind != TI64 && !lt.IsNumeric() {
			return Type{}, fmt.Errorf("%s: ordered comparison requires numeric operands, found %s", e.Position(), lt)
		}
		e.setType(Scalar(TBool))
	case Eq, Ne:
		if lt.Kind == TVoid {
			return Type{}, fmt.Errorf("%s: cannot compare void", e.Position())
		}
		e.setType(Scalar(TBool))
	default:
		return Type{}, fmt.Errorf("%s: unknown operator", e.Position())
	}
	return e.TypeOf(), nil
}

func (c *checker) call(e *CallExpr, hint Type) (Type, error) {
	// Conversion? Type names double as cast operators.
	if k, ok := TypeKindByName[e.Name]; ok {
		if len(e.Args) != 1 {
			return Type{}, fmt.Errorf("%s: conversion %s takes exactly one argument", e.Position(), e.Name)
		}
		at, err := c.expr(e.Args[0], Scalar(TVoid))
		if err != nil {
			return Type{}, err
		}
		if at.IsArray() || (at.Kind != TI64 && !at.IsNumeric()) {
			return Type{}, fmt.Errorf("%s: cannot convert %s to %s", e.Position(), at, e.Name)
		}
		if k == TBool || k == TVoid {
			return Type{}, fmt.Errorf("%s: cannot convert to %s", e.Position(), e.Name)
		}
		e.IsCast = true
		e.setType(Scalar(k))
		return e.TypeOf(), nil
	}
	if b, ok := BuiltinByName[e.Name]; ok {
		return c.builtin(e, b, hint)
	}
	f, ok := c.out.Funcs[e.Name]
	if !ok {
		return Type{}, fmt.Errorf("%s: undefined function %q", e.Position(), e.Name)
	}
	if len(e.Args) != len(f.Params) {
		return Type{}, fmt.Errorf("%s: %q takes %d arguments, found %d", e.Position(), e.Name, len(f.Params), len(e.Args))
	}
	for i, a := range e.Args {
		t, err := c.expr(a, f.Params[i].Type)
		if err != nil {
			return Type{}, err
		}
		if !t.Equal(f.Params[i].Type) {
			return Type{}, fmt.Errorf("%s: argument %d of %q must be %s, found %s",
				a.Position(), i+1, e.Name, f.Params[i].Type, t)
		}
	}
	e.Decl = f
	e.setType(f.Ret)
	return f.Ret, nil
}

func (c *checker) builtin(e *CallExpr, b Builtin, hint Type) (Type, error) {
	e.IsBuiltin = true
	e.Builtin = b
	argc := map[Builtin]int{
		BSqrt: 1, BAbs: 1, BPrint: 1, BQClear: 0, BQAdd: 1, BQMAdd: 2,
		BQSub: 1, BQMSub: 2, BQRound: 0, BFMA: 3,
	}[b]
	if len(e.Args) != argc {
		return Type{}, fmt.Errorf("%s: %s takes %d argument(s), found %d", e.Position(), e.Name, argc, len(e.Args))
	}
	switch b {
	case BSqrt, BAbs:
		t, err := c.expr(e.Args[0], hint)
		if err != nil {
			return Type{}, err
		}
		if !t.IsNumeric() && !(b == BAbs && t.Kind == TI64) {
			return Type{}, fmt.Errorf("%s: %s requires a numeric argument, found %s", e.Position(), e.Name, t)
		}
		e.setType(t)
		return t, nil
	case BPrint:
		if s, ok := e.Args[0].(*StringLit); ok {
			s.setType(Scalar(TVoid))
			e.setType(Scalar(TVoid))
			return e.TypeOf(), nil
		}
		t, err := c.expr(e.Args[0], Scalar(TVoid))
		if err != nil {
			return Type{}, err
		}
		if t.IsArray() {
			return Type{}, fmt.Errorf("%s: cannot print a whole array", e.Position())
		}
		e.setType(Scalar(TVoid))
		return e.TypeOf(), nil
	case BQClear:
		e.setType(Scalar(TVoid))
		return e.TypeOf(), nil
	case BQAdd, BQSub, BQMAdd, BQMSub:
		var common Type
		for i, a := range e.Args {
			h := Scalar(TP32)
			if i > 0 {
				h = common
			}
			t, err := c.expr(a, h)
			if err != nil {
				return Type{}, err
			}
			if !t.IsPosit() {
				return Type{}, fmt.Errorf("%s: %s requires posit arguments, found %s", e.Position(), e.Name, t)
			}
			if i > 0 && !t.Equal(common) {
				return Type{}, fmt.Errorf("%s: %s arguments must share a type", e.Position(), e.Name)
			}
			common = t
		}
		e.setType(Scalar(TVoid))
		return e.TypeOf(), nil
	case BQRound:
		k := TypeKindByName[strings.TrimPrefix(e.Name, "qround_")]
		e.setType(Scalar(k))
		return e.TypeOf(), nil
	case BFMA:
		var common Type
		for i, a := range e.Args {
			h := hint
			if i > 0 {
				h = common
			}
			t, err := c.expr(a, h)
			if err != nil {
				return Type{}, err
			}
			if !t.IsNumeric() {
				return Type{}, fmt.Errorf("%s: fma requires numeric arguments, found %s", e.Position(), t)
			}
			if i > 0 && !t.Equal(common) {
				return Type{}, fmt.Errorf("%s: fma arguments must share a type", e.Position())
			}
			common = t
		}
		e.setType(common)
		return common, nil
	}
	return Type{}, fmt.Errorf("%s: unhandled builtin %s", e.Position(), e.Name)
}
