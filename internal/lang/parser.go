package lang

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent parser for PCL.
type Parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses a compilation unit.
func Parse(src string) (*Program, error) {
	toks, err := Tokens(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.program()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k Kind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	t := p.cur()
	return t, fmt.Errorf("%s: expected %s, found %s %q", t.Pos, k, t.Kind, t.Text)
}

func (p *Parser) program() (*Program, error) {
	prog := &Program{}
	for !p.at(EOF) {
		switch p.cur().Kind {
		case KwVar:
			d, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(Semi); err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, d)
		case KwFunc:
			f, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			t := p.cur()
			return nil, fmt.Errorf("%s: expected var or func at top level, found %q", t.Pos, t.Text)
		}
	}
	return prog, nil
}

// varDecl parses `var name: type [= expr]` (without the trailing semicolon).
func (p *Parser) varDecl() (*VarDecl, error) {
	kw, err := p.expect(KwVar)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Colon); err != nil {
		return nil, err
	}
	typ, err := p.typeExpr()
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Name: name.Text, Type: typ, Pos: kw.Pos}
	if p.accept(Assign) {
		d.Init, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

func (p *Parser) typeExpr() (Type, error) {
	var dims []int
	for p.accept(LBrack) {
		n, err := p.expect(INT)
		if err != nil {
			return Type{}, err
		}
		d, err := strconv.Atoi(n.Text)
		if err != nil || d <= 0 {
			return Type{}, fmt.Errorf("%s: bad array dimension %q", n.Pos, n.Text)
		}
		if _, err := p.expect(RBrack); err != nil {
			return Type{}, err
		}
		dims = append(dims, d)
	}
	if len(dims) > 2 {
		return Type{}, fmt.Errorf("arrays are limited to two dimensions")
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return Type{}, err
	}
	k, ok := TypeKindByName[name.Text]
	if !ok || k == TVoid {
		return Type{}, fmt.Errorf("%s: unknown type %q", name.Pos, name.Text)
	}
	return Type{Kind: k, Dims: dims}, nil
}

func (p *Parser) funcDecl() (*FuncDecl, error) {
	kw, err := p.expect(KwFunc)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	f := &FuncDecl{Name: name.Text, Ret: Scalar(TVoid), Pos: kw.Pos}
	for !p.at(RParen) {
		pn, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Colon); err != nil {
			return nil, err
		}
		pt, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		if pt.IsArray() {
			return nil, fmt.Errorf("%s: array parameters are not supported; use globals", pn.Pos)
		}
		f.Params = append(f.Params, Param{Name: pn.Text, Type: pt, Pos: pn.Pos})
		if !p.accept(Comma) {
			break
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	if p.accept(Colon) {
		rt, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		if rt.IsArray() {
			return nil, fmt.Errorf("%s: array return types are not supported", kw.Pos)
		}
		f.Ret = rt
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *Parser) block() (*BlockStmt, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: lb.Pos}
	for !p.at(RBrace) {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // consume }
	return b, nil
}

func (p *Parser) stmt() (Stmt, error) {
	switch p.cur().Kind {
	case KwVar:
		d, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &DeclStmt{Decl: d}, nil
	case KwIf:
		return p.ifStmt()
	case KwWhile:
		kw := p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, Pos: kw.Pos}, nil
	case KwFor:
		return p.forStmt()
	case KwReturn:
		kw := p.next()
		r := &ReturnStmt{Pos: kw.Pos}
		if !p.at(Semi) {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			r.X = x
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return r, nil
	case KwBreak:
		kw := p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &BreakStmt{Pos: kw.Pos}, nil
	case KwContinue:
		kw := p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Pos: kw.Pos}, nil
	case LBrace:
		return p.block()
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return s, nil
	}
}

func (p *Parser) ifStmt() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: then, Pos: kw.Pos}
	if p.accept(KwElse) {
		if p.at(KwIf) {
			s.Else, err = p.ifStmt()
		} else {
			s.Else, err = p.block()
		}
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *Parser) forStmt() (Stmt, error) {
	kw := p.next()
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	f := &ForStmt{Pos: kw.Pos}
	var err error
	if !p.at(Semi) {
		if p.at(KwVar) {
			d, derr := p.varDecl()
			if derr != nil {
				return nil, derr
			}
			f.Init = &DeclStmt{Decl: d}
		} else {
			f.Init, err = p.simpleStmt()
			if err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if !p.at(Semi) {
		f.Cond, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if !p.at(RParen) {
		f.Post, err = p.simpleStmt()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	f.Body, err = p.block()
	if err != nil {
		return nil, err
	}
	return f, nil
}

// simpleStmt parses an assignment (plain or compound) or an expression
// statement, without the trailing semicolon.
func (p *Parser) simpleStmt() (Stmt, error) {
	pos := p.cur().Pos
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	switch k := p.cur().Kind; k {
	case Assign:
		p.next()
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Lhs: lhs, Rhs: rhs, Pos: pos}, nil
	case PlusAssign, MinusAssign, StarAssign, SlashAssign:
		p.next()
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		var op Kind
		switch k {
		case PlusAssign:
			op = Plus
		case MinusAssign:
			op = Minus
		case StarAssign:
			op = Star
		case SlashAssign:
			op = Slash
		}
		// Desugar: lhs op= rhs  ⇒  lhs = lhs op rhs. The checker verifies
		// that lhs is an lvalue; re-evaluating the index expressions is
		// fine because the language has no side effects in expressions.
		bin := &BinaryExpr{Op: op, L: lhs, R: rhs}
		bin.exprBase.Pos = pos
		return &AssignStmt{Lhs: lhs, Rhs: bin, Pos: pos}, nil
	default:
		return &ExprStmt{X: lhs, Pos: pos}, nil
	}
}

// Expression grammar, in decreasing binding order:
//
//	primary: literal | ident | call | (expr) | index
//	unary:   -x !x
//	mul:     * / %
//	add:     + -
//	cmp:     < <= > >= == !=
//	and:     &&
//	or:      ||
func (p *Parser) expr() (Expr, error) { return p.orExpr() }

func (p *Parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.at(OrOr) {
		op := p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		b := &BinaryExpr{Op: op.Kind, L: l, R: r}
		b.exprBase.Pos = op.Pos
		l = b
	}
	return l, nil
}

func (p *Parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.at(AndAnd) {
		op := p.next()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		b := &BinaryExpr{Op: op.Kind, L: l, R: r}
		b.exprBase.Pos = op.Pos
		l = b
	}
	return l, nil
}

func (p *Parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case Lt, Le, Gt, Ge, Eq, Ne:
			op := p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			b := &BinaryExpr{Op: op.Kind, L: l, R: r}
			b.exprBase.Pos = op.Pos
			l = b
		default:
			return l, nil
		}
	}
}

func (p *Parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.at(Plus) || p.at(Minus) {
		op := p.next()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		b := &BinaryExpr{Op: op.Kind, L: l, R: r}
		b.exprBase.Pos = op.Pos
		l = b
	}
	return l, nil
}

func (p *Parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.at(Star) || p.at(Slash) || p.at(Percent) {
		op := p.next()
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		b := &BinaryExpr{Op: op.Kind, L: l, R: r}
		b.exprBase.Pos = op.Pos
		l = b
	}
	return l, nil
}

func (p *Parser) unaryExpr() (Expr, error) {
	if p.at(Minus) || p.at(Not) {
		op := p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		// Fold unary minus into literals so "-1.5" is a literal, keeping
		// constant adaptation simple.
		if op.Kind == Minus {
			switch lit := x.(type) {
			case *IntLit:
				lit.Value = -lit.Value
				return lit, nil
			case *FloatLit:
				lit.Value = -lit.Value
				lit.Text = "-" + lit.Text
				return lit, nil
			}
		}
		u := &UnaryExpr{Op: op.Kind, X: x}
		u.exprBase.Pos = op.Pos
		return u, nil
	}
	return p.postfixExpr()
}

func (p *Parser) postfixExpr() (Expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for p.at(LBrack) {
		id, ok := x.(*Ident)
		if !ok {
			return nil, fmt.Errorf("%s: only named arrays can be indexed", p.cur().Pos)
		}
		ix := &IndexExpr{Arr: id}
		ix.exprBase.Pos = id.Position()
		for p.accept(LBrack) {
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBrack); err != nil {
				return nil, err
			}
			ix.Indices = append(ix.Indices, idx)
		}
		if len(ix.Indices) > 2 {
			return nil, fmt.Errorf("%s: too many indices", id.Position())
		}
		x = ix
	}
	return x, nil
}

func (p *Parser) primaryExpr() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case INT:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad integer %q", t.Pos, t.Text)
		}
		e := &IntLit{Value: v}
		e.exprBase.Pos = t.Pos
		return e, nil
	case FLOAT:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad float %q", t.Pos, t.Text)
		}
		e := &FloatLit{Value: v, Text: t.Text}
		e.exprBase.Pos = t.Pos
		return e, nil
	case KwTrue, KwFalse:
		p.next()
		e := &BoolLit{Value: t.Kind == KwTrue}
		e.exprBase.Pos = t.Pos
		return e, nil
	case STRING:
		p.next()
		e := &StringLit{Value: t.Text}
		e.exprBase.Pos = t.Pos
		return e, nil
	case IDENT:
		p.next()
		if p.at(LParen) {
			p.next()
			c := &CallExpr{Name: t.Text}
			c.exprBase.Pos = t.Pos
			for !p.at(RParen) {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				c.Args = append(c.Args, a)
				if !p.accept(Comma) {
					break
				}
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			return c, nil
		}
		e := &Ident{Name: t.Text}
		e.exprBase.Pos = t.Pos
		return e, nil
	case LParen:
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return x, nil
	default:
		return nil, fmt.Errorf("%s: unexpected token %q in expression", t.Pos, t.Text)
	}
}
