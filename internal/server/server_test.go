package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"positdebug/internal/shadow/oracle"
)

const goodSrc = `
func main(): p32 {
	var a: p32 = 1.0;
	var b: p32 = 3.0;
	return a / b;
}
`

// slowSrc burns steps long enough to still be running when the test acts
// (cancel, drain, shed) but finishes fast once allowed to.
const slowSrc = `
func main(): i64 {
	var i: i64 = 0;
	while (i < 2000000) {
		i += 1;
	}
	return i;
}
`

// spinSrc never terminates on its own: only a budget or cancellation
// stops it.
const spinSrc = `
func main(): i64 {
	var i: i64 = 0;
	while (true) {
		i += 1;
	}
	return i;
}
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postRun(t *testing.T, ts *httptest.Server, req RunRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestRunOK(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postRun(t, ts, RunRequest{Source: goodSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Steps == 0 || rr.Value == "" {
		t.Fatalf("empty result: %+v", rr)
	}
	if rr.Degraded {
		t.Fatalf("unexpected degradation: %+v", rr)
	}
	if rr.Precision != 256 {
		t.Fatalf("want precision 256, got %d", rr.Precision)
	}
	if rr.Cached {
		t.Fatal("first run cannot be a cache hit")
	}

	// Second run of the same source is the warm path.
	resp, body = postRun(t, ts, RunRequest{Source: goodSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr2 RunResponse
	if err := json.Unmarshal(body, &rr2); err != nil {
		t.Fatal(err)
	}
	if !rr2.Cached {
		t.Fatal("second run of identical source should hit the compile cache")
	}
	if rr2.Value != rr.Value || rr2.Steps != rr.Steps {
		t.Fatalf("cached run diverged: %+v vs %+v", rr, rr2)
	}
}

// TestFailureTaxonomy pins the error → HTTP status mapping the service
// documents: compile errors 400, traps 422, budget trips 503.
func TestFailureTaxonomy(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  RunRequest
		code int
		kind string
	}{
		{"compile error", RunRequest{Source: "func main(: i64 {}"}, 400, "compile"},
		{"missing source", RunRequest{}, 400, "bad-request"},
		{"unknown fn", RunRequest{Source: goodSrc, Fn: "nope"}, 400, "bad-request"},
		{"bad arity", RunRequest{Source: goodSrc, Args: []string{"1"}}, 400, "bad-request"},
		{"bad arg", RunRequest{Source: goodSrc, Fn: "main", Args: []string{}}, 200, ""},
		{"step budget", RunRequest{Source: spinSrc, MaxSteps: 100_000}, 503, "resource-exhausted"},
		{"wall clock", RunRequest{Source: spinSrc, TimeoutMS: 50}, 503, "resource-exhausted"},
		{"trap", RunRequest{Source: `
var A: [4]i64;
func main(): i64 {
	var i: i64 = 100000000;
	return A[i];
}
`}, 422, "trap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postRun(t, ts, tc.req)
			if resp.StatusCode != tc.code {
				t.Fatalf("want %d, got %d: %s", tc.code, resp.StatusCode, body)
			}
			if tc.code == 200 {
				return
			}
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatalf("non-JSON error body %q: %v", body, err)
			}
			if er.Kind != tc.kind {
				t.Fatalf("want kind %q, got %q (%s)", tc.kind, er.Kind, er.Error)
			}
		})
	}
}

// TestLoadShedding saturates a 1-slot, 1-queue server with long runs and
// checks the overflow is shed with 429 + Retry-After while the admitted
// requests complete.
func TestLoadShedding(t *testing.T) {
	_, ts := newTestServer(t, Config{
		MaxConcurrent:  1,
		MaxQueue:       1,
		DefaultTimeout: 30 * time.Second,
	})
	const total = 8
	codes := make([]int, total)
	var retryAfter []string
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postRun(t, ts, RunRequest{Source: slowSrc})
			mu.Lock()
			codes[i] = resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests {
				retryAfter = append(retryAfter, resp.Header.Get("Retry-After"))
			}
			mu.Unlock()
		}(i)
		time.Sleep(10 * time.Millisecond) // establish arrival order
	}
	wg.Wait()
	var ok, shed int
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		default:
			t.Fatalf("unexpected status %d (all: %v)", c, codes)
		}
	}
	if shed == 0 {
		t.Fatalf("no requests shed at 1-slot/1-queue capacity: %v", codes)
	}
	if ok < 2 {
		t.Fatalf("admitted requests should complete: %v", codes)
	}
	for _, ra := range retryAfter {
		if ra == "" {
			t.Fatal("429 without Retry-After header")
		}
	}
}

// TestDegradationUnderMemoryPressure drives the watchdog's state machine
// directly: over the soft limit the fleet walks the oracle ladder — bigfp
// 256 → double-double (106-bit, fixed 16-byte entries) → double-double
// with sampled shadow execution — and responses flag Degraded and name the
// serving oracle; below half the limit it recovers rung by rung.
func TestDegradationUnderMemoryPressure(t *testing.T) {
	s, ts := newTestServer(t, Config{SoftMemLimit: 1 << 30})
	heap := uint64(0)
	var mu sync.Mutex
	s.memUsage = func() uint64 { mu.Lock(); defer mu.Unlock(); return heap }
	setHeap := func(v uint64) { mu.Lock(); heap = v; mu.Unlock() }

	want := func(kind oracle.Kind, prec uint, sample int) {
		t.Helper()
		tier := s.EffectiveTier()
		if tier.Oracle != kind || tier.Sample != sample {
			t.Fatalf("want tier {%s sample=%d}, got %+v", kind, sample, tier)
		}
		if p := s.EffectivePrecision(); p != prec {
			t.Fatalf("want effective precision %d, got %d", prec, p)
		}
	}
	want(oracle.BigFP, 256, 1)
	setHeap(2 << 30)
	s.watchdogStep()
	want(oracle.DD, 106, 1)

	resp, body := postRun(t, ts, RunRequest{Source: goodSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Degraded || rr.Oracle != "dd" || rr.Precision != 106 {
		t.Fatalf("want degraded dd run at 106 bits, got %+v", rr)
	}

	s.watchdogStep()
	want(oracle.DD, 106, 16) // last rung: dd + sampled shadow execution
	s.watchdogStep()         // floor: the ladder has no lower rung
	want(oracle.DD, 106, 16)

	// The sampled rung serves runs too, still flagged Degraded.
	resp, body = postRun(t, ts, RunRequest{Source: goodSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	rr = RunResponse{}
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if !rr.Degraded || rr.Oracle != "dd" {
		t.Fatalf("want degraded sampled dd run, got %+v", rr)
	}

	setHeap(1 << 28) // well under limit/2: recover stepwise
	s.watchdogStep()
	want(oracle.DD, 106, 1)
	s.watchdogStep()
	want(oracle.BigFP, 256, 1)
	s.watchdogStep()
	want(oracle.BigFP, 256, 1)

	resp, body = postRun(t, ts, RunRequest{Source: goodSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	rr = RunResponse{}
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Degraded {
		t.Fatalf("recovered server still serving degraded runs: %+v", rr)
	}
	if rr.Oracle != "bigfp" || rr.Precision != 256 {
		t.Fatalf("recovered server should serve bigfp-256, got %+v", rr)
	}
}

// TestDegradationLadderNonBigfp: a fleet configured for a fixed-precision
// oracle has only sampling to degrade to.
func TestDegradationLadderNonBigfp(t *testing.T) {
	s := New(Config{Oracle: oracle.DD, SoftMemLimit: 1 << 30})
	heap := uint64(2 << 30)
	s.memUsage = func() uint64 { return heap }
	if tier := s.EffectiveTier(); tier.Oracle != oracle.DD || tier.Sample != 1 {
		t.Fatalf("base tier: %+v", tier)
	}
	s.watchdogStep()
	if tier := s.EffectiveTier(); tier.Oracle != oracle.DD || tier.Sample != degradeSampleStride {
		t.Fatalf("degraded tier: %+v", tier)
	}
	s.watchdogStep()
	if tier := s.EffectiveTier(); tier.Sample != degradeSampleStride {
		t.Fatalf("ladder should floor at the sampled rung: %+v", tier)
	}
}

// TestPanicIsolation: a handler-path panic answers 500 for that request
// and the server keeps serving.
func TestPanicIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// Force a panic inside the guarded section via a poisoned cache.
	s.cache = nil
	resp, body := postRun(t, ts, RunRequest{Source: goodSrc})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("want 500 from panicking handler, got %d: %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Kind != "internal-fault" {
		t.Fatalf("want kind internal-fault, got %q", er.Kind)
	}

	// Heal the cache: the process survived and serves normally.
	s.cache = newProgCache(4)
	resp, body = postRun(t, ts, RunRequest{Source: goodSrc})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server did not survive the panic: %d %s", resp.StatusCode, body)
	}
}

// TestEndpoints covers /healthz, /readyz (including the draining flip) and
// /metrics exposure of the service gauges.
func TestEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	if code, body := get("/readyz"); code != 200 || !strings.Contains(body, "256") {
		t.Fatalf("readyz: %d %s", code, body)
	}

	postRun(t, ts, RunRequest{Source: goodSrc})
	_, metrics := get("/metrics")
	for _, want := range []string{
		"pd_serve_precision_bits 256",
		`pd_serve_requests_total{code="200"} 1`,
		"pd_serve_cache_misses_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}

	s.BeginDrain()
	if code, body := get("/readyz"); code != 503 || !strings.Contains(body, "draining") {
		t.Fatalf("draining readyz: %d %s", code, body)
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Fatal("healthz must stay 200 while draining (process is alive)")
	}
	resp, _ := postRun(t, ts, RunRequest{Source: goodSrc})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /run: want 503, got %d", resp.StatusCode)
	}
}

// TestBaselineRun: baseline requests skip shadow execution and report no
// detections or precision.
func TestBaselineRun(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postRun(t, ts, RunRequest{Source: goodSrc, Baseline: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Precision != 0 || rr.Detections != nil {
		t.Fatalf("baseline run leaked shadow fields: %+v", rr)
	}
}

// TestDetectionsSurface: the classic catastrophic-cancellation program
// must surface detections in the response map.
func TestDetectionsSurface(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := `
func main(): p32 {
	var a: p32 = 10000.0;
	var b: p32 = 10000.01;
	return (b - a) * 100000.0;
}
`
	resp, body := postRun(t, ts, RunRequest{Source: src})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range rr.Detections {
		total += n
	}
	if total == 0 {
		t.Fatalf("cancellation-heavy program reported no detections: %+v", rr)
	}
}

// TestArgsRoundTrip passes arguments in both encodings.
func TestArgsRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := `
func add(a: i64, b: i64): i64 {
	return a + b;
}
`
	resp, body := postRun(t, ts, RunRequest{Source: src, Fn: "add", Args: []string{"40", "0x2"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Value != "0x2a" {
		t.Fatalf("want 0x2a, got %s", rr.Value)
	}
}

// TestRequestBodyLimit: a body over MaxSourceBytes is a 400, not an OOM.
func TestRequestBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSourceBytes: 1024})
	big := RunRequest{Source: fmt.Sprintf("// %s\n%s", strings.Repeat("x", 4096), goodSrc)}
	resp, _ := postRun(t, ts, big)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body: want 400, got %d", resp.StatusCode)
	}
}
