package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"positdebug/internal/obs"
	"positdebug/internal/profile"
	"positdebug/internal/workloads"
)

// syncBuf is a mutex-guarded log target: the flight dump happens after the
// response is written, so tests poll it rather than read it racily.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func (s *syncBuf) waitNonEmpty(t *testing.T) string {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if out := s.String(); out != "" {
			return out
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("flight log stayed empty")
	return ""
}

// TestFlightDumpOnDetections: a detection-bearing 200 dumps the request's
// flight ring as schema-valid JSONL, every event stamped with the request
// id that the response also carries.
func TestFlightDumpOnDetections(t *testing.T) {
	log := &syncBuf{}
	s, ts := newTestServer(t, Config{FlightRecorder: 64, FlightLog: log})
	resp, body := postRun(t, ts, RunRequest{Source: workloads.RootCountSource})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Detections) == 0 {
		t.Fatalf("RootCount produced no detections: %s", body)
	}
	hdr := resp.Header.Get("X-Request-Id")
	if hdr == "" || rr.Req != hdr {
		t.Fatalf("request id mismatch: header %q, body %q", hdr, rr.Req)
	}

	out := log.waitNonEmpty(t)
	if _, err := obs.ValidateJSONLines(strings.NewReader(out)); err != nil {
		t.Fatalf("flight dump fails schema validation: %v", err)
	}
	for i, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var e obs.Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if e.Req != hdr {
			t.Fatalf("line %d: event req %q, want %q", i, e.Req, hdr)
		}
	}
	for _, want := range []string{`"kind":"detection"`, `"kind":"span-begin"`, `"name":"shadow-exec"`, `"name":"request"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("flight dump lacks %s:\n%s", want, out)
		}
	}
	if got := s.reg.Counter("pd_flight_events_total").Value(); got == 0 {
		t.Fatal("pd_flight_events_total not published")
	}
	if got := s.reg.Counter("pd_flight_dumps_total").Value(); got != 1 {
		t.Fatalf("pd_flight_dumps_total = %d, want 1", got)
	}
}

// TestFlightDumpOn5xx: a resource-exhausted 503 dumps the ring too.
func TestFlightDumpOn5xx(t *testing.T) {
	log := &syncBuf{}
	_, ts := newTestServer(t, Config{FlightRecorder: 64, FlightLog: log})
	resp, body := postRun(t, ts, RunRequest{Source: spinSrc, MaxSteps: 50_000})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Req == "" || er.Req != resp.Header.Get("X-Request-Id") {
		t.Fatalf("error response id %q vs header %q", er.Req, resp.Header.Get("X-Request-Id"))
	}
	out := log.waitNonEmpty(t)
	if !strings.Contains(out, `"kind":"run-start"`) {
		t.Fatalf("flight dump lacks run-start:\n%s", out)
	}
}

// TestFlightNoDumpOnCleanRun: clean baseline 200s leave the log silent.
func TestFlightNoDumpOnCleanRun(t *testing.T) {
	log := &syncBuf{}
	_, ts := newTestServer(t, Config{FlightRecorder: 64, FlightLog: log})
	resp, body := postRun(t, ts, RunRequest{Source: goodSrc, Baseline: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	time.Sleep(20 * time.Millisecond)
	if out := log.String(); out != "" {
		t.Fatalf("unexpected flight dump for clean run:\n%s", out)
	}
}

// TestDebugProfileEndpoint: request profiling aggregates across requests
// under the source-hash key and serves both JSON and the text report.
func TestDebugProfileEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{ProfileRequests: true})
	for i := 0; i < 2; i++ {
		resp, body := postRun(t, ts, RunRequest{Source: goodSrc})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("run %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/debug/profile")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var profiles map[string]*profile.Profile
	if err := json.NewDecoder(resp.Body).Decode(&profiles); err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 1 {
		t.Fatalf("got %d profiles, want 1", len(profiles))
	}
	for key, p := range profiles {
		if !strings.HasPrefix(key, "src-") {
			t.Fatalf("profile key %q lacks source-hash prefix", key)
		}
		if p.Runs != 2 {
			t.Fatalf("profile runs = %d, want 2", p.Runs)
		}
		if len(p.Insts) == 0 {
			t.Fatal("profile has no instructions")
		}
		for _, ip := range p.Insts {
			if !strings.HasPrefix(ip.Pos, key+":") {
				t.Fatalf("instruction pos %q not prefixed with source hash %q", ip.Pos, key)
			}
		}
	}
	top, err := http.Get(ts.URL + "/debug/profile?top=3")
	if err != nil {
		t.Fatal(err)
	}
	defer top.Body.Close()
	text, _ := io.ReadAll(top.Body)
	if !strings.Contains(string(text), "src-") || !strings.Contains(string(text), "err(mean)") {
		t.Fatalf("top report unexpected:\n%s", text)
	}
}

// TestPprofMount: /debug/pprof/ answers only when EnablePprof is set.
func TestPprofMount(t *testing.T) {
	_, off := newTestServer(t, Config{})
	resp, err := http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof mounted without EnablePprof: %d", resp.StatusCode)
	}
	_, on := newTestServer(t, Config{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof cmdline status %d, want 200", resp.StatusCode)
	}
}
