// Package server is PositDebug as a hardened HTTP service: it compiles,
// shadow-executes and debugs posit/FP programs per request, built for the
// long-running production posture the paper's constant-size metadata makes
// viable — bounded admission, cooperative cancellation end-to-end, graceful
// degradation under memory pressure, and a clean drain on shutdown.
//
// Failure taxonomy → HTTP status:
//
//	compile/parse/check error, bad request shape  → 400
//	program trap (OOB access, stack overflow)     → 422
//	*interp.Cancelled (client gone, drain)        → 499
//	*interp.InternalFault (recovered panic)       → 500
//	*interp.ResourceExhausted (budgets)           → 503
//	admission queue full (load shed)              → 429 + Retry-After
//	draining                                      → 503
//
// Every run is bounded (wall clock + steps), governed by the request
// context (a disconnected client stops the interpreter within one poll
// interval), and isolated (a panic anywhere in the run is a structured 500
// for that request, never a crashed process). A memory-pressure watchdog
// steps the fleet down a shadow-oracle ladder (bigfp → double-double →
// double-double sampled) and back, reported via Degraded/Oracle in
// responses and the pd_serve_precision_bits / pd_serve_shadow_tier gauges.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	positdebug "positdebug"
	"positdebug/internal/backend"
	"positdebug/internal/interp"
	"positdebug/internal/obs"
	"positdebug/internal/profile"
	"positdebug/internal/shadow"
	"positdebug/internal/shadow/oracle"
)

// StatusClientClosedRequest is nginx's 499: the client went away (or the
// server began draining) and the run was cancelled before completing.
const StatusClientClosedRequest = 499

// Config tunes the service. The zero value gets production-safe defaults.
type Config struct {
	// MaxConcurrent bounds simultaneously executing runs
	// (default GOMAXPROCS).
	MaxConcurrent int
	// MaxQueue bounds runs waiting for an execution slot; beyond it the
	// request is shed with 429 + Retry-After (default 4×MaxConcurrent).
	MaxQueue int
	// DefaultTimeout is the per-run wall-clock budget when the request
	// doesn't set one (default 2s); MaxTimeout caps what a request may ask
	// for (default 30s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxSteps is the per-run instruction budget (default 50M); requests
	// may lower it, never raise it.
	MaxSteps int64
	// MaxSourceBytes caps the request body (default 256 KiB).
	MaxSourceBytes int64
	// Precision is the bigfp shadow precision served at zero memory
	// pressure (default 256). Fixed-precision oracles ignore it.
	Precision uint
	// Oracle is the shadow-arithmetic backend served at zero memory
	// pressure (default oracle.BigFP). Under pressure the watchdog walks
	// the degradation ladder: a bigfp fleet steps to the double-double
	// oracle, then to double-double with sampled shadow execution; a
	// fleet already on a cheap fixed-precision oracle only has sampling
	// left to give.
	Oracle oracle.Kind
	// MaxShadowBytes is the per-run shadow-memory budget (0 = unlimited);
	// over-budget runs degrade per-run on top of the fleet-wide step.
	MaxShadowBytes int64
	// SoftMemLimit is the heap size (bytes) at which the watchdog steps
	// the fleet-wide precision down one notch; recovery happens below half
	// the limit. 0 disables the watchdog.
	SoftMemLimit uint64
	// WatchdogInterval is the memory poll cadence (default 1s).
	WatchdogInterval time.Duration
	// DrainTimeout bounds how long Serve waits for in-flight requests
	// after shutdown begins (default 30s).
	DrainTimeout time.Duration
	// CacheSize is the compiled-program LRU capacity (default 64). A
	// cache hit is the warm-session path: compile and instrumentation are
	// already done, the request pays only for execution.
	CacheSize int
	// MaxBatch caps the sub-requests accepted in one POST /batch body
	// (default 64). A batch takes a single admission slot — the amortized
	// path for clients submitting many small runs.
	MaxBatch int
	// Metrics receives service and shadow-oracle metrics (default: a
	// fresh registry, exposed at /metrics).
	Metrics *obs.Registry
	// FlightRecorder sizes the per-request flight ring: every request
	// records its last N observability events (run lifecycle, detections,
	// causal spans), each stamped with the request id, and the ring is
	// dumped as JSONL to FlightLog when the request answers 5xx or
	// reports detections. 0 disables the recorder.
	FlightRecorder int
	// FlightLog receives flight-recorder dumps (default os.Stderr).
	// Writes are serialized; each line is one obs.Event.
	FlightLog io.Writer
	// TraceStore bounds how many completed requests' span batches are
	// retained for GET /debug/trace/{requestID} — the endpoint a fleet
	// coordinator assembles distributed traces from. Defaults to 256 when
	// the flight recorder is on; negative disables the endpoint.
	TraceStore int
	// ProfileRequests collects a per-request numerical-error profile and
	// merges it into a live aggregate keyed by source hash, served at
	// /debug/profile (JSON; ?top=N for the text report).
	ProfileRequests bool
	// ProfileSample is the shadow sampling stride for request profiling
	// (default 1 = full shadow).
	ProfileSample int
	// EnablePprof mounts Go's runtime profiling endpoints
	// (net/http/pprof) under /debug/pprof/.
	EnablePprof bool
	// Backend selects the execution engine for every served run
	// (default backend.Default, the tree-walking interpreter). The VM
	// backend produces byte-identical responses at lower ns/op; flip it
	// service-wide with pdserve -backend=vm.
	Backend backend.Kind
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 50_000_000
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 256 << 10
	}
	if c.Precision == 0 {
		c.Precision = 256
	}
	if k, err := oracle.Parse(string(c.Oracle)); err == nil {
		c.Oracle = k
	}
	if c.WatchdogInterval <= 0 {
		c.WatchdogInterval = time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.FlightRecorder > 0 && c.FlightLog == nil {
		c.FlightLog = os.Stderr
	}
	if c.FlightRecorder > 0 && c.TraceStore == 0 {
		c.TraceStore = 256
	}
	if c.ProfileSample <= 0 {
		c.ProfileSample = 1
	}
	return c
}

// shadowTier is one rung of the fleet-wide degradation ladder: which
// oracle the fleet serves, the bigfp precision (meaningful on bigfp rungs
// only) and the shadow sampling stride (1 = full shadow execution).
type shadowTier struct {
	Oracle    oracle.Kind
	Precision uint
	Sample    int
}

// degradeSampleStride is the sampling stride of the ladder's final rung:
// shadow every 16th dynamic instance per static instruction, the same
// stride the profiler benchmarks as ~an order of magnitude of overhead
// reduction while keeping every instruction in the profile.
const degradeSampleStride = 16

// degradationLadder builds the fleet's tiers for a base configuration.
// The watchdog degrades across oracles — bigfp → double-double →
// double-double sampled — instead of shaving bigfp mantissa bits: the
// double-double oracle frees the arbitrary-precision mantissas entirely
// (16 fixed bytes per entry) while keeping 106-bit shadow arithmetic,
// a far better memory/accuracy trade than bigfp-64. A base that already
// runs a cheap fixed-precision oracle only has sampling left to give.
func degradationLadder(kind oracle.Kind, prec uint) []shadowTier {
	if kind == oracle.BigFP {
		return []shadowTier{
			{Oracle: oracle.BigFP, Precision: prec, Sample: 1},
			{Oracle: oracle.DD, Precision: prec, Sample: 1},
			{Oracle: oracle.DD, Precision: prec, Sample: degradeSampleStride},
		}
	}
	return []shadowTier{
		{Oracle: kind, Precision: prec, Sample: 1},
		{Oracle: kind, Precision: prec, Sample: degradeSampleStride},
	}
}

// Server is one service instance. Build with New, expose via Handler or
// run with Serve.
type Server struct {
	cfg Config
	reg *obs.Registry

	sem      chan struct{}
	queued   atomic.Int64
	inflight atomic.Int64

	// ladder is the degradation ladder; tierShift indexes the rung
	// currently served fleet-wide (0 = the configured base tier).
	ladder    []shadowTier
	tierShift atomic.Int32

	drainOnce sync.Once
	drainCh   chan struct{}

	// memUsage reports current heap use for the watchdog; replaced in
	// tests to simulate pressure without allocating gigabytes.
	memUsage func() uint64

	// reqSeq numbers requests; the id rides every event of the request's
	// flight ring and the X-Request-Id response header.
	reqSeq   atomic.Uint64
	flightMu sync.Mutex // serializes FlightLog dumps

	profMu   sync.Mutex
	profiles map[string]*profile.Profile // live aggregates by source hash

	// traces retains completed flights for /debug/trace (nil = disabled).
	traces *traceStore

	cache *progCache
	mux   *http.ServeMux
}

// New builds a server from the configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		reg:     cfg.Metrics,
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		drainCh: make(chan struct{}),
		cache:   newProgCache(cfg.CacheSize),
	}
	s.ladder = degradationLadder(cfg.Oracle, cfg.Precision)
	s.memUsage = heapInUse
	s.profiles = make(map[string]*profile.Profile)
	s.reg.Gauge("pd_serve_precision_bits").Set(int64(s.EffectivePrecision()))
	s.reg.Gauge("pd_serve_shadow_tier").Set(0)
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/campaign/shard", s.handleCampaignShard)
	mux.HandleFunc("/profile/shard", s.handleProfileShard)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	if cfg.FlightRecorder > 0 && cfg.TraceStore > 0 {
		s.traces = newTraceStore(cfg.TraceStore)
		mux.HandleFunc("/debug/trace/", s.handleDebugTrace)
	}
	if cfg.ProfileRequests {
		mux.HandleFunc("/debug/profile", s.handleDebugProfile)
	}
	if cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	return s
}

// Handler returns the service's HTTP handler (/run, /healthz, /readyz,
// /metrics).
func (s *Server) Handler() http.Handler { return s.mux }

// InFlight reports currently executing runs (tests and the drain loop).
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// BeginDrain flips the server into drain mode: /readyz and new /run
// requests answer 503 while in-flight runs finish. Idempotent.
func (s *Server) BeginDrain() {
	s.drainOnce.Do(func() { close(s.drainCh) })
}

// Serve accepts connections on l until ctx is cancelled (the SIGTERM path
// in cmd/pdserve), then drains gracefully: new requests are rejected with
// 503, in-flight requests finish (bounded by DrainTimeout), and Serve
// returns nil for a clean exit. The memory watchdog runs for the lifetime
// of the listener when SoftMemLimit is set.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	hs := &http.Server{Handler: s.Handler()}
	stopWatch := make(chan struct{})
	defer close(stopWatch)
	if s.cfg.SoftMemLimit > 0 {
		go s.watchdog(stopWatch)
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	s.BeginDrain()
	// Drain window: the listener stays open so late arrivals get an
	// explicit 503 (not a connection refused) while in-flight runs finish.
	deadline := time.Now().Add(s.cfg.DrainTimeout)
	for (s.inflight.Load() > 0 || s.queued.Load() > 0) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := hs.Shutdown(sctx)
	if err != nil {
		// Stragglers past the drain budget: close connections outright;
		// their request contexts cancel and the interpreter stops with
		// *Cancelled within one poll interval.
		_ = hs.Close()
	}
	<-errc // always http.ErrServerClosed by now
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// EffectiveTier is the degradation-ladder rung the fleet currently serves.
func (s *Server) EffectiveTier() shadowTier {
	shift := int(s.tierShift.Load())
	if shift >= len(s.ladder) {
		shift = len(s.ladder) - 1
	}
	return s.ladder[shift]
}

// EffectivePrecision is the nominal shadow precision of the tier the fleet
// currently serves: the configured bigfp precision on the base rung, the
// oracle's fixed precision (106-bit double-double, 53-bit residue) on
// degraded rungs.
func (s *Server) EffectivePrecision() uint {
	t := s.EffectiveTier()
	return oracle.NominalPrecision(t.Oracle, t.Precision)
}

// Stats snapshots the worker's health telemetry for a heartbeat: queue
// pressure, the shadow tier currently served, compile-cache efficacy and
// cumulative detection/shard counts. Cheap — a few atomic loads and one
// registry scan — so calling it every beat costs nothing measurable.
func (s *Server) Stats() obs.WorkerStats {
	tier := s.EffectiveTier()
	name := string(tier.Oracle)
	if tier.Oracle == oracle.BigFP {
		name = fmt.Sprintf("bigfp-%d", tier.Precision)
	}
	if tier.Sample > 1 {
		name = fmt.Sprintf("%s/sample-%d", name, tier.Sample)
	}
	return obs.WorkerStats{
		QueueDepth:  s.queued.Load(),
		InFlight:    s.inflight.Load(),
		ShadowTier:  name,
		Degraded:    s.tierShift.Load() > 0,
		CacheHits:   s.reg.Counter("pd_serve_cache_hits_total").Value(),
		CacheMisses: s.reg.Counter("pd_serve_cache_misses_total").Value(),
		Detections:  s.reg.SumCounters("pd_detections_total"),
		Shards:      s.reg.SumCounters("pd_serve_shards_total"),
	}
}

// RunRequest is the /run request body.
type RunRequest struct {
	// Source is the PCL program (posit or FP types).
	Source string `json:"source"`
	// Fn is the entry function (default "main").
	Fn string `json:"fn,omitempty"`
	// Args are entry-function argument bit patterns, as strings so 64-bit
	// values survive JSON ("0x..." hex or decimal).
	Args []string `json:"args,omitempty"`
	// Baseline runs uninstrumented — no shadow execution, no detections.
	Baseline bool `json:"baseline,omitempty"`
	// TimeoutMS lowers the per-run wall-clock budget (capped by the
	// server's MaxTimeout).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// MaxSteps lowers the per-run instruction budget (never raises it).
	MaxSteps int64 `json:"max_steps,omitempty"`
}

// RunResponse is the /run success body.
type RunResponse struct {
	// Value is the entry function's result bit pattern, 0x-prefixed hex.
	Value string `json:"value"`
	// Rendered is the result decoded per the entry function's return type.
	Rendered string `json:"rendered"`
	// Output is everything the program printed.
	Output string `json:"output,omitempty"`
	// Steps is the instruction count.
	Steps int64 `json:"steps"`
	// Detections counts shadow-oracle detections by kind (absent for
	// baseline runs).
	Detections map[string]int `json:"detections,omitempty"`
	// Precision is the nominal shadow precision the run completed at
	// (the bigfp mantissa precision, or the fixed precision of a cheap
	// oracle); Oracle names the shadow backend that served it. Degraded
	// marks runs served below the configured tier — fleet-wide
	// memory-pressure degradation or a per-run shadow-budget retry.
	Precision uint   `json:"precision,omitempty"`
	Oracle    string `json:"oracle,omitempty"`
	Degraded  bool   `json:"degraded"`
	// Cached reports a compile-cache hit (the warm path).
	Cached bool `json:"cached"`
	// Req is the request id, also sent as X-Request-Id and stamped on
	// every flight-recorder event of this request.
	Req string `json:"req,omitempty"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
	// Kind is the failure taxonomy bucket: bad-request, compile, trap,
	// cancelled, internal-fault, resource-exhausted, shed, draining.
	Kind string `json:"kind"`
	// Req is the request id (when the request got far enough to be
	// assigned one).
	Req string `json:"req,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) writeErr(w http.ResponseWriter, code int, kind, msg string) {
	s.reg.Counter(`pd_serve_requests_total{code="` + strconv.Itoa(code) + `"}`).Inc()
	writeJSON(w, code, ErrorResponse{Error: msg, Kind: kind})
}

// statusFor maps a run error onto the failure taxonomy.
func statusFor(err error) (int, string) {
	var c *interp.Cancelled
	if errors.As(err, &c) {
		return StatusClientClosedRequest, "cancelled"
	}
	var re *interp.ResourceExhausted
	if errors.As(err, &re) {
		return http.StatusServiceUnavailable, "resource-exhausted"
	}
	var f *interp.InternalFault
	if errors.As(err, &f) {
		return http.StatusInternalServerError, "internal-fault"
	}
	var tr *interp.Trap
	if errors.As(err, &tr) {
		return http.StatusUnprocessableEntity, "trap"
	}
	return http.StatusInternalServerError, "internal-fault"
}

// admit acquires an execution slot, queueing up to MaxQueue requests.
// Returns (release, 0) on success, or (nil, status) when the request must
// be rejected: 429 when the queue is full (load shed), 503 when draining,
// 499 when the client went away while queued.
func (s *Server) admit(ctx context.Context) (func(), int) {
	if s.Draining() {
		return nil, http.StatusServiceUnavailable
	}
	release := func() {
		<-s.sem
		s.inflight.Add(-1)
		s.reg.Gauge("pd_serve_inflight").Set(s.inflight.Load())
	}
	acquire := func() func() {
		s.inflight.Add(1)
		s.reg.Gauge("pd_serve_inflight").Set(s.inflight.Load())
		return release
	}
	select {
	case s.sem <- struct{}{}:
		return acquire(), 0
	default:
	}
	if q := s.queued.Add(1); q > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		s.reg.Counter("pd_serve_shed_total").Inc()
		return nil, http.StatusTooManyRequests
	}
	s.reg.Gauge("pd_serve_queue_depth").Set(s.queued.Load())
	defer func() {
		s.queued.Add(-1)
		s.reg.Gauge("pd_serve_queue_depth").Set(s.queued.Load())
	}()
	select {
	case s.sem <- struct{}{}:
		return acquire(), 0
	case <-ctx.Done():
		return nil, StatusClientClosedRequest
	case <-s.drainCh:
		return nil, http.StatusServiceUnavailable
	}
}

// retryAfterSecs derives the Retry-After hint from the live admission
// backlog: the queue ahead of a shed arrival drains at roughly
// MaxConcurrent runs per DefaultTimeout worth of wall clock, so advertise
// that estimate (clamped to [1, 30] seconds) instead of a blind constant.
// Coordinators honor it, which turns load shedding into real backpressure.
func (s *Server) retryAfterSecs() int {
	waves := (s.queued.Load() + int64(s.cfg.MaxConcurrent) - 1) / int64(s.cfg.MaxConcurrent)
	secs := int(float64(waves) * s.cfg.DefaultTimeout.Seconds())
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// rejectAdmission answers the three admission failures with their taxonomy
// kinds; 429s carry the queue-depth-derived Retry-After hint.
func (s *Server) rejectAdmission(w http.ResponseWriter, code int) {
	switch code {
	case http.StatusTooManyRequests:
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSecs()))
		s.writeErr(w, code, "shed", "admission queue full; retry later")
	case http.StatusServiceUnavailable:
		s.writeErr(w, code, "draining", "server is draining")
	default:
		s.writeErr(w, code, "cancelled", "client closed request while queued")
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, "bad-request", "POST only")
		return
	}
	release, code := s.admit(r.Context())
	if code != 0 {
		s.rejectAdmission(w, code)
		return
	}
	defer release()
	// Per-request panic isolation: the interpreter already converts run
	// panics into *InternalFault; this belt catches bugs in the handler
	// path itself so one poisoned request never kills the process.
	defer func() {
		if rec := recover(); rec != nil {
			s.writeErr(w, http.StatusInternalServerError, "internal-fault",
				fmt.Sprintf("panic serving request: %v", rec))
		}
	}()

	fl := s.newFlight(r)
	w.Header().Set("X-Request-Id", fl.id)

	var req RunRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.failRun(w, fl, http.StatusBadRequest, "bad-request", "invalid JSON body: "+err.Error())
		return
	}
	resp, code, kind, msg := s.execRun(r.Context(), req, fl)
	if code != http.StatusOK {
		s.failRun(w, fl, code, kind, msg)
		return
	}
	fl.span.End()
	s.reg.Counter(`pd_serve_requests_total{code="200"}`).Inc()
	writeJSON(w, http.StatusOK, resp)
	if len(resp.Detections) > 0 {
		s.dumpFlight(fl)
	}
	s.closeFlight(fl)
}

// execRun is the run pipeline shared by /run and /batch: compile (through
// the cache), resolve the entry function and arguments, execute under the
// request context and budgets, and classify any failure onto the taxonomy.
// The caller owns admission, the flight lifecycle and the HTTP response;
// on success the returned response already carries the flight id.
func (s *Server) execRun(ctx context.Context, req RunRequest, fl *flight) (RunResponse, int, string, string) {
	fail := func(code int, kind, msg string) (RunResponse, int, string, string) {
		return RunResponse{}, code, kind, msg
	}
	if req.Source == "" {
		return fail(http.StatusBadRequest, "bad-request", "missing source")
	}

	csp := fl.tr.Start("compile")
	prog, cached, err := s.cache.get(req.Source)
	csp.End()
	if err != nil {
		return fail(http.StatusBadRequest, "compile", err.Error())
	}
	if cached {
		s.reg.Counter("pd_serve_cache_hits_total").Inc()
	} else {
		s.reg.Counter("pd_serve_cache_misses_total").Inc()
	}

	fnName := req.Fn
	if fnName == "" {
		fnName = "main"
	}
	fn := prog.Module.FuncByName(fnName)
	if fn == nil {
		return fail(http.StatusBadRequest, "bad-request", fmt.Sprintf("no function %q", fnName))
	}
	args := make([]uint64, 0, len(req.Args))
	for _, a := range req.Args {
		v, err := strconv.ParseUint(a, 0, 64)
		if err != nil {
			return fail(http.StatusBadRequest, "bad-request", "bad argument "+strconv.Quote(a)+": "+err.Error())
		}
		args = append(args, v)
	}
	if len(args) != len(fn.Params) {
		return fail(http.StatusBadRequest, "bad-request",
			fmt.Sprintf("%s takes %d args, got %d", fnName, len(fn.Params), len(args)))
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	maxSteps := s.cfg.MaxSteps
	if req.MaxSteps > 0 && req.MaxSteps < maxSteps {
		maxSteps = req.MaxSteps
	}
	lim := interp.Limits{Timeout: timeout, MaxSteps: maxSteps}

	opts := []positdebug.Option{
		positdebug.WithContext(ctx),
		positdebug.WithLimits(lim),
		positdebug.WithArgs(args...),
		positdebug.WithBackend(s.cfg.Backend),
	}
	if fl.sink != nil {
		opts = append(opts, positdebug.WithTrace(fl.sink), positdebug.WithSpans(fl.tr))
	}
	tier := s.EffectiveTier()
	fleetDegraded := tier != s.ladder[0]
	var scfg shadow.Config
	var col *profile.Collector
	if req.Baseline {
		opts = append(opts, positdebug.WithBaseline())
	} else {
		scfg = shadow.ConfigFor(tier.Oracle, tier.Precision)
		scfg.MaxShadowBytes = s.cfg.MaxShadowBytes
		scfg.Tracing = false
		scfg.MaxReports = 1
		scfg.Metrics = s.reg
		opts = append(opts, positdebug.WithShadow(scfg))
		// The tier's sampling stride and the profiler's stride compose by
		// taking the coarser of the two — one sampler serves both.
		stride := tier.Sample
		if s.cfg.ProfileRequests {
			col = profile.NewCollector()
			opts = append(opts, positdebug.WithProfile(col))
			if s.cfg.ProfileSample > stride {
				stride = s.cfg.ProfileSample
			}
		}
		if stride > 1 || col != nil {
			opts = append(opts, positdebug.WithSampling(stride))
		}
	}

	res, err := prog.Exec(fnName, opts...)
	if err != nil {
		code, kind := statusFor(err)
		return fail(code, kind, err.Error())
	}
	if col != nil {
		s.mergeProfile(prog, col)
	}

	resp := RunResponse{
		Value:    "0x" + strconv.FormatUint(res.Value, 16),
		Rendered: interp.FormatValue(fn.Ret, res.Value),
		Output:   res.Output,
		Steps:    res.Steps,
		Cached:   cached,
	}
	if !req.Baseline {
		resp.Precision = oracle.NominalPrecision(res.ShadowOracle, res.ShadowPrecision)
		resp.Oracle = string(res.ShadowOracle)
		resp.Degraded = res.Degraded || fleetDegraded
		if res.Summary != nil && len(res.Summary.Counts) > 0 {
			resp.Detections = make(map[string]int, len(res.Summary.Counts))
			for k, n := range res.Summary.Counts {
				resp.Detections[k.String()] = n
			}
		}
		if resp.Degraded {
			s.reg.Counter("pd_serve_degraded_responses_total").Inc()
		}
	}
	resp.Req = fl.id
	return resp, http.StatusOK, "", ""
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	tier := s.EffectiveTier()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":    "ok",
		"precision": s.EffectivePrecision(),
		"oracle":    string(tier.Oracle),
		"sample":    tier.Sample,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WriteProm(w)
}

// progCache is a small LRU of compiled programs keyed by source text — the
// warm-session path of the service. Entries are published only after
// Instrumented() has run, so a cached *positdebug.Program is read-only and
// safe to Exec from any number of concurrent requests.
type progCache struct {
	mu   sync.Mutex
	cap  int
	tick int64
	m    map[string]*cacheEntry
}

type cacheEntry struct {
	prog *positdebug.Program
	last int64
}

func newProgCache(capacity int) *progCache {
	return &progCache{cap: capacity, m: make(map[string]*cacheEntry, capacity)}
}

func (c *progCache) get(src string) (*positdebug.Program, bool, error) {
	c.mu.Lock()
	if e, ok := c.m[src]; ok {
		c.tick++
		e.last = c.tick
		c.mu.Unlock()
		return e.prog, true, nil
	}
	c.mu.Unlock()

	// Compile outside the lock: one slow compile must not serialize every
	// cache hit behind it. Concurrent misses on the same source compile
	// twice; the first to publish wins.
	prog, err := positdebug.Compile(src)
	if err != nil {
		return nil, false, err
	}
	// Name the program by source hash before freezing: profile keys and
	// report positions render as src-<hash>:line:col, stable across
	// requests and server restarts.
	sum := sha256.Sum256([]byte(src))
	prog.SetSourceName("src-" + hex.EncodeToString(sum[:6]))
	prog.Instrumented() // freeze the lazy cache before publishing

	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[src]; ok {
		c.tick++
		e.last = c.tick
		return e.prog, true, nil
	}
	if len(c.m) >= c.cap {
		var oldest string
		var min int64 = 1<<63 - 1
		for k, e := range c.m {
			if e.last < min {
				min, oldest = e.last, k
			}
		}
		delete(c.m, oldest)
	}
	c.tick++
	c.m[src] = &cacheEntry{prog: prog, last: c.tick}
	return prog, false, nil
}
