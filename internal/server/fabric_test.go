package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"positdebug/internal/faultinject"
	"positdebug/internal/harness"
	"positdebug/internal/profile"
)

func postJSON(t *testing.T, ts *httptest.Server, path string, v interface{}) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestCampaignShardEndpoint: the HTTP shard path returns exactly what an
// in-process RunShard computes — the fabric's wire hop adds nothing and
// loses nothing.
func TestCampaignShardEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultTimeout: 30 * time.Second})
	ccfg := faultinject.CampaignConfig{Workload: "polybench/gemm", N: 8, Runs: 6, Seed: 11}
	req := faultinject.ShardRequest{
		Version: faultinject.ShardVersion, Config: ccfg.Wire(), Arch: "posit", Lo: 1, Hi: 4,
	}

	want, err := faultinject.RunShard(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts, "/campaign/shard", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got faultinject.ShardResult
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(&got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("HTTP shard differs from local shard:\nlocal: %s\nhttp:  %s", wantJSON, gotJSON)
	}
}

func TestCampaignShardRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	ccfg := faultinject.CampaignConfig{Workload: "polybench/gemm", N: 8, Runs: 6, Seed: 11}

	cases := []struct {
		name string
		req  faultinject.ShardRequest
	}{
		{"version-skew", faultinject.ShardRequest{Version: 99, Config: ccfg.Wire(), Arch: "posit", Lo: 0, Hi: 1}},
		{"unknown-workload", faultinject.ShardRequest{Version: faultinject.ShardVersion,
			Config: faultinject.CampaignConfig{Workload: "nope/nope", Runs: 6}.Wire(), Arch: "posit", Lo: 0, Hi: 1}},
		{"range-past-runs", faultinject.ShardRequest{Version: faultinject.ShardVersion, Config: ccfg.Wire(), Arch: "posit", Lo: 0, Hi: 7}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts, "/campaign/shard", tc.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400): %s", tc.name, resp.StatusCode, body)
		}
	}
}

// TestProfileShardEndpoint: two HTTP shards merge to the bytes of one
// local sweep over the combined run count.
func TestProfileShardEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{DefaultTimeout: 30 * time.Second})
	shardReq := func(runs int) harness.ProfileShard {
		return harness.ProfileShard{Version: harness.ProfileShardVersion, Kernel: "gemm", N: 8, Posit: true, Runs: runs}
	}
	fetch := func(runs int) *profile.Profile {
		t.Helper()
		resp, body := postJSON(t, ts, "/profile/shard", shardReq(runs))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		p, err := profile.ReadJSON(bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	merged, err := profile.Merge(fetch(2), fetch(3))
	if err != nil {
		t.Fatal(err)
	}
	want, err := harness.RecordProfile(harness.ProfileOptions{Kernel: "gemm", N: 8, Posit: true, Runs: 5})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := want.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("merged HTTP profile shards differ from the local sweep")
	}

	if resp, _ := postJSON(t, ts, "/profile/shard", harness.ProfileShard{Version: 99, Kernel: "gemm", Runs: 1}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("version skew not rejected: %d", resp.StatusCode)
	}
}

// TestBatchEndpoint: one admission, many runs, per-item statuses.
func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 4})
	resp, body := postJSON(t, ts, "/batch", BatchRequest{Requests: []RunRequest{
		{Source: goodSrc},
		{Source: "func main(: oops"},
		{Source: goodSrc, Fn: "nosuch"},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Responses) != 3 {
		t.Fatalf("want 3 responses, got %d", len(br.Responses))
	}
	if br.Responses[0].Status != http.StatusOK || br.Responses[0].Response == nil {
		t.Fatalf("item 0: %+v", br.Responses[0])
	}
	if br.Responses[1].Status != http.StatusBadRequest || br.Responses[1].Error == nil || br.Responses[1].Error.Kind != "compile" {
		t.Fatalf("item 1: %+v", br.Responses[1])
	}
	if br.Responses[2].Status != http.StatusBadRequest {
		t.Fatalf("item 2: %+v", br.Responses[2])
	}

	if resp, _ := postJSON(t, ts, "/batch", BatchRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch not rejected: %d", resp.StatusCode)
	}
	over := BatchRequest{Requests: make([]RunRequest, 5)}
	for i := range over.Requests {
		over.Requests[i] = RunRequest{Source: goodSrc}
	}
	if resp, _ := postJSON(t, ts, "/batch", over); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversize batch not rejected: %d", resp.StatusCode)
	}
}

// TestRetryAfterScalesWithQueueDepth: the hint must reflect the backlog —
// an empty queue advertises the floor, a deep one a proportionally longer
// wait, and the cap keeps it sane.
func TestRetryAfterScalesWithQueueDepth(t *testing.T) {
	s := New(Config{MaxConcurrent: 2, DefaultTimeout: 2 * time.Second})
	if got := s.retryAfterSecs(); got != 1 {
		t.Fatalf("empty queue: want hint 1, got %d", got)
	}
	s.queued.Store(4) // two waves of 2 at 2s each
	if got := s.retryAfterSecs(); got != 4 {
		t.Fatalf("4 queued: want hint 4, got %d", got)
	}
	s.queued.Store(1000)
	if got := s.retryAfterSecs(); got != 30 {
		t.Fatalf("deep queue: want capped hint 30, got %d", got)
	}
}
