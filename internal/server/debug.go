package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	positdebug "positdebug"
	"positdebug/internal/obs"
	"positdebug/internal/profile"
)

// flight is one request's observability context: the request id, the span
// tracer, and (when the recorder is enabled) the bounded ring holding the
// request's most recent events, each stamped with the id. The tracer and
// span are nil-safe, so handler code uses them unconditionally.
type flight struct {
	id   string
	tc   obs.TraceContext // cross-process binding from traceparent (zero if none)
	ring *obs.Ring
	sink obs.Sink
	tr   *obs.Tracer
	span *obs.Span // the request-level span, closed at response time
}

// maxRequestIDLen bounds an adopted X-Request-Id: longer ids are ignored
// (the server assigns its own) rather than letting a client bloat every
// flight event.
const maxRequestIDLen = 64

// traceBinding extracts the cross-process trace identity an incoming
// request carries: the coordinator-stamped request id and the W3C
// traceparent. Absent or malformed headers return zero values — the
// request just runs untraced under a locally assigned id.
func traceBinding(r *http.Request) (id string, tc obs.TraceContext) {
	if r == nil {
		return "", obs.TraceContext{}
	}
	if rid := r.Header.Get(obs.RequestIDHeader); rid != "" && len(rid) <= maxRequestIDLen {
		id = rid
	}
	tc, _ = obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
	return id, tc
}

// newFlight builds the request's flight: the coordinator-stamped request
// id and trace context when the request carries them (so both sides of
// the wire log the same handles), a locally assigned id otherwise. Every
// ring event carries the request id and — when the request arrived with a
// traceparent — the fleet trace id, so a coordinator-side symptom greps
// straight to the worker-side flight dump.
func (s *Server) newFlight(r *http.Request) *flight {
	id, tc := traceBinding(r)
	return s.buildFlight(id, tc)
}

func (s *Server) buildFlight(id string, tc obs.TraceContext) *flight {
	if id == "" {
		id = fmt.Sprintf("r%08d", s.reqSeq.Add(1))
	}
	fl := &flight{id: id, tc: tc}
	if s.cfg.FlightRecorder > 0 {
		ring := obs.NewRing(s.cfg.FlightRecorder)
		trace := tc.TraceID
		fl.ring = ring
		fl.sink = obs.SinkFunc(func(e obs.Event) {
			e.Req = id
			e.Trace = trace
			ring.Emit(e)
		})
		fl.tr = obs.NewTracer(fl.sink)
	}
	// The request span stays a local root: its cross-process parent (the
	// coordinator attempt span) travels in the /debug/trace batch header,
	// keeping the local event stream schema-valid (span ids are a local
	// counter, the coordinator's ids live in another space).
	fl.span = fl.tr.Start("request")
	return fl
}

// failRun answers an error, closing the request span first so it lands in
// the ring, and dumps the flight recorder on 5xx — the black-box readout
// for the responses worth investigating.
func (s *Server) failRun(w http.ResponseWriter, fl *flight, code int, kind, msg string) {
	fl.span.End()
	s.reg.Counter(`pd_serve_requests_total{code="` + strconv.Itoa(code) + `"}`).Inc()
	writeJSON(w, code, ErrorResponse{Error: msg, Kind: kind, Req: fl.id})
	if code >= 500 {
		s.dumpFlight(fl)
	}
	s.closeFlight(fl)
}

// dumpFlight writes the request's retained events as JSONL to FlightLog.
// Events keep their in-request sequence numbers and carry the request id,
// so interleaved dumps from concurrent requests still attribute cleanly.
func (s *Server) dumpFlight(fl *flight) {
	if fl.ring == nil || s.cfg.FlightLog == nil {
		return
	}
	events := fl.ring.Events()
	if len(events) == 0 {
		return
	}
	s.reg.Counter("pd_flight_dumps_total").Inc()
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	enc := json.NewEncoder(s.cfg.FlightLog)
	for _, e := range events {
		if enc.Encode(e) != nil {
			return
		}
	}
}

// closeFlight publishes the ring's lifetime totals (event and drop counts)
// into the registry once per request, and retains the completed flight's
// span batch for GET /debug/trace/{requestID} — the coordinator fetches
// it after each attempt to assemble the fleet-wide trace.
func (s *Server) closeFlight(fl *flight) {
	if fl.ring != nil {
		fl.ring.PublishMetrics(s.reg)
		if s.traces != nil {
			s.traces.put(obs.RequestTrace{
				Req: fl.id, Trace: fl.tc.TraceID, Parent: fl.tc.SpanID,
				Events: fl.ring.Events(),
			})
		}
	}
}

// traceStore retains the most recent completed flights' span batches,
// keyed by request id, bounded FIFO. It serves trace assembly, not
// archival: the coordinator fetches a batch within moments of the
// response, so a few hundred entries of slack absorbs any fetch lag.
type traceStore struct {
	mu    sync.Mutex
	cap   int
	m     map[string]obs.RequestTrace
	order []string
}

func newTraceStore(capacity int) *traceStore {
	return &traceStore{cap: capacity, m: make(map[string]obs.RequestTrace, capacity)}
}

func (t *traceStore) put(rt obs.RequestTrace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.m[rt.Req]; !ok {
		t.order = append(t.order, rt.Req)
		for len(t.order) > t.cap {
			delete(t.m, t.order[0])
			t.order = t.order[1:]
		}
	}
	t.m[rt.Req] = rt
}

func (t *traceStore) get(req string) (obs.RequestTrace, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rt, ok := t.m[req]
	return rt, ok
}

// handleDebugTrace serves GET /debug/trace/{requestID}: the completed
// request's span batch plus its cross-process binding (trace id, parent
// coordinator span), JSON-shaped as obs.RequestTrace. 404 for unknown or
// evicted ids — the coordinator treats that as "worker had nothing to
// add", never an error.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeErr(w, http.StatusMethodNotAllowed, "bad-request", "GET only")
		return
	}
	rid := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
	if rid == "" || strings.Contains(rid, "/") {
		s.writeErr(w, http.StatusBadRequest, "bad-request", "want /debug/trace/{requestID}")
		return
	}
	rt, ok := s.traces.get(rid)
	if !ok {
		s.writeErr(w, http.StatusNotFound, "bad-request", "no retained trace for "+rid)
		return
	}
	writeJSON(w, http.StatusOK, rt)
}

// mergeProfile folds one request's collector into the live aggregate for
// its program, keyed by the source hash stamped in cache.get.
func (s *Server) mergeProfile(prog *positdebug.Program, col *profile.Collector) {
	mod := prog.Instrumented()
	snap := col.Snapshot(mod, mod.Source, "pcl", 1, int64(s.cfg.ProfileSample))
	s.profMu.Lock()
	defer s.profMu.Unlock()
	prev, ok := s.profiles[snap.Key]
	if !ok {
		s.profiles[snap.Key] = snap
		return
	}
	// A merge failure would mean two programs share a source hash with
	// different instruction metadata; keep the existing aggregate.
	if merged, err := profile.Merge(prev, snap); err == nil {
		s.profiles[snap.Key] = merged
	}
}

// handleDebugProfile serves the live numerical-error profiles: JSON keyed
// by source hash, or the top-N text report with ?top=N.
func (s *Server) handleDebugProfile(w http.ResponseWriter, r *http.Request) {
	s.profMu.Lock()
	keys := make([]string, 0, len(s.profiles))
	for k := range s.profiles {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if n, _ := strconv.Atoi(r.URL.Query().Get("top")); n > 0 {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, k := range keys {
			if err := s.profiles[k].WriteTop(w, n); err != nil {
				break
			}
			fmt.Fprintln(w)
		}
		s.profMu.Unlock()
		return
	}
	out := make(map[string]*profile.Profile, len(s.profiles))
	for _, k := range keys {
		out[k] = s.profiles[k]
	}
	s.profMu.Unlock()
	writeJSON(w, http.StatusOK, out)
}
