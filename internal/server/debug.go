package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	positdebug "positdebug"
	"positdebug/internal/obs"
	"positdebug/internal/profile"
)

// flight is one request's observability context: the request id, the span
// tracer, and (when the recorder is enabled) the bounded ring holding the
// request's most recent events, each stamped with the id. The tracer and
// span are nil-safe, so handler code uses them unconditionally.
type flight struct {
	id   string
	ring *obs.Ring
	sink obs.Sink
	tr   *obs.Tracer
	span *obs.Span // the request-level span, closed at response time
}

// newFlight assigns the next request id and, when configured, builds the
// request's flight ring and tracer.
func (s *Server) newFlight() *flight {
	fl := &flight{id: fmt.Sprintf("r%08d", s.reqSeq.Add(1))}
	if s.cfg.FlightRecorder > 0 {
		ring := obs.NewRing(s.cfg.FlightRecorder)
		id := fl.id
		fl.ring = ring
		fl.sink = obs.SinkFunc(func(e obs.Event) {
			e.Req = id
			ring.Emit(e)
		})
		fl.tr = obs.NewTracer(fl.sink)
	}
	fl.span = fl.tr.Start("request")
	return fl
}

// failRun answers an error, closing the request span first so it lands in
// the ring, and dumps the flight recorder on 5xx — the black-box readout
// for the responses worth investigating.
func (s *Server) failRun(w http.ResponseWriter, fl *flight, code int, kind, msg string) {
	fl.span.End()
	s.reg.Counter(`pd_serve_requests_total{code="` + strconv.Itoa(code) + `"}`).Inc()
	writeJSON(w, code, ErrorResponse{Error: msg, Kind: kind, Req: fl.id})
	if code >= 500 {
		s.dumpFlight(fl)
	}
	s.closeFlight(fl)
}

// dumpFlight writes the request's retained events as JSONL to FlightLog.
// Events keep their in-request sequence numbers and carry the request id,
// so interleaved dumps from concurrent requests still attribute cleanly.
func (s *Server) dumpFlight(fl *flight) {
	if fl.ring == nil || s.cfg.FlightLog == nil {
		return
	}
	events := fl.ring.Events()
	if len(events) == 0 {
		return
	}
	s.reg.Counter("pd_flight_dumps_total").Inc()
	s.flightMu.Lock()
	defer s.flightMu.Unlock()
	enc := json.NewEncoder(s.cfg.FlightLog)
	for _, e := range events {
		if enc.Encode(e) != nil {
			return
		}
	}
}

// closeFlight publishes the ring's lifetime totals (event and drop counts)
// into the registry once per request.
func (s *Server) closeFlight(fl *flight) {
	if fl.ring != nil {
		fl.ring.PublishMetrics(s.reg)
	}
}

// mergeProfile folds one request's collector into the live aggregate for
// its program, keyed by the source hash stamped in cache.get.
func (s *Server) mergeProfile(prog *positdebug.Program, col *profile.Collector) {
	mod := prog.Instrumented()
	snap := col.Snapshot(mod, mod.Source, "pcl", 1, int64(s.cfg.ProfileSample))
	s.profMu.Lock()
	defer s.profMu.Unlock()
	prev, ok := s.profiles[snap.Key]
	if !ok {
		s.profiles[snap.Key] = snap
		return
	}
	// A merge failure would mean two programs share a source hash with
	// different instruction metadata; keep the existing aggregate.
	if merged, err := profile.Merge(prev, snap); err == nil {
		s.profiles[snap.Key] = merged
	}
}

// handleDebugProfile serves the live numerical-error profiles: JSON keyed
// by source hash, or the top-N text report with ?top=N.
func (s *Server) handleDebugProfile(w http.ResponseWriter, r *http.Request) {
	s.profMu.Lock()
	keys := make([]string, 0, len(s.profiles))
	for k := range s.profiles {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if n, _ := strconv.Atoi(r.URL.Query().Get("top")); n > 0 {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, k := range keys {
			if err := s.profiles[k].WriteTop(w, n); err != nil {
				break
			}
			fmt.Fprintln(w)
		}
		s.profMu.Unlock()
		return
	}
	out := make(map[string]*profile.Profile, len(s.profiles))
	for _, k := range keys {
		out[k] = s.profiles[k]
	}
	s.profMu.Unlock()
	writeJSON(w, http.StatusOK, out)
}
