package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// This file is the worker side of fabric fleet membership: a pdserve
// started with -coordinator announces itself to the coordinator's
// registrar, keeps a heartbeat going so silence is distinguishable from
// health, and — the part that actually buys tail latency — announces its
// own departure the moment a drain begins, so the coordinator migrates
// its leases immediately instead of discovering the loss via heartbeat
// TTL or a timed-out shard.

// RegisterConfig configures a worker's registration loop.
type RegisterConfig struct {
	// Coordinator is the registrar base URL (pdcoord -listen), e.g.
	// "http://coord:8731".
	Coordinator string
	// Advertise is this worker's own base URL as the coordinator should
	// dial it (pdserve derives it from the listen address when the flag is
	// unset).
	Advertise string
	// Interval is the heartbeat cadence (default 5s). Keep it a few times
	// shorter than the registrar's HeartbeatTTL.
	Interval time.Duration
	// Client posts registrations (default a 5s-timeout client — a beat
	// must never wedge behind a dead coordinator).
	Client *http.Client
	// Logf receives registration lifecycle events.
	Logf func(format string, args ...any)
}

// RegisterLoop announces the server to a fabric coordinator and heartbeats
// until ctx is cancelled or a drain begins, then posts one deregistration
// so in-flight leases migrate without waiting for expiry. Beat failures
// are tolerated — the worker keeps serving and keeps retrying, so workers
// may start before their coordinator and still assemble into a fleet.
// Runs until done; start it in a goroutine next to Serve.
func (s *Server) RegisterLoop(ctx context.Context, cfg RegisterConfig) {
	if cfg.Interval <= 0 {
		cfg.Interval = 5 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 5 * time.Second}
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	// The payload is rebuilt every beat: the tier can degrade and the
	// stats snapshot moves, and the heartbeat is the coordinator's only
	// continuous telemetry feed from this worker.
	payload := func() []byte {
		tier := s.EffectiveTier()
		b, _ := json.Marshal(map[string]any{
			"url":      cfg.Advertise,
			"capacity": s.cfg.MaxConcurrent,
			"oracle":   string(tier.Oracle),
			"backend":  s.cfg.Backend.String(),
			"stats":    s.Stats(),
		})
		return b
	}

	beat := func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			cfg.Coordinator+"/fabric/register", bytes.NewReader(payload()))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := cfg.Client.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("registrar answered %d", resp.StatusCode)
		}
		return nil
	}

	// Log transitions, not every beat: one line when registration is first
	// established or re-established, one when it starts failing.
	healthy := false
	if err := beat(); err != nil {
		logf("register: cannot reach coordinator %s (%v); will keep trying", cfg.Coordinator, err)
	} else {
		healthy = true
		logf("register: joined fleet at %s as %s", cfg.Coordinator, cfg.Advertise)
	}

	t := time.NewTicker(cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			s.deregister(cfg, "shutdown", logf)
			return
		case <-s.drainCh:
			s.deregister(cfg, "draining", logf)
			return
		case <-t.C:
			if err := beat(); err != nil {
				if healthy {
					logf("register: heartbeat to %s failing (%v); will keep trying", cfg.Coordinator, err)
				}
				healthy = false
			} else if !healthy {
				healthy = true
				logf("register: re-joined fleet at %s", cfg.Coordinator)
			}
		}
	}
}

// deregister posts the departure announcement. It gets its own short
// deadline on a fresh context: the loop's ctx is typically already
// cancelled when we get here, and the goodbye must still go out.
func (s *Server) deregister(cfg RegisterConfig, reason string, logf func(string, ...any)) {
	dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	body, _ := json.Marshal(map[string]string{"url": cfg.Advertise, "reason": reason})
	req, err := http.NewRequestWithContext(dctx, http.MethodPost,
		cfg.Coordinator+"/fabric/deregister", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cfg.Client.Do(req)
	if err != nil {
		logf("register: departure announcement failed (%v); coordinator will notice via TTL", err)
		return
	}
	resp.Body.Close()
	logf("register: announced departure (%s)", reason)
}

// DrainNotify exposes the drain signal: the channel closes when
// BeginDrain runs. The registration loop uses it to announce departure
// before the process exits.
func (s *Server) DrainNotify() <-chan struct{} { return s.drainCh }
