package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestGracefulDrainOnSIGTERM is the shutdown contract end to end, with a
// real signal: a SIGTERM delivered mid-request lets the in-flight run
// finish with 200, answers new requests 503 while draining, and Serve
// returns nil (the binary's clean-exit path).
func TestGracefulDrainOnSIGTERM(t *testing.T) {
	s := New(Config{
		MaxConcurrent:  2,
		DefaultTimeout: 30 * time.Second,
		DrainTimeout:   20 * time.Second,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + l.Addr().String()

	// The same wiring cmd/pdserve uses: NotifyContext turns SIGTERM into
	// context cancellation, which flips Serve into its drain window.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ctx, l) }()

	post := func(req RunRequest) (int, RunResponse, error) {
		body, err := json.Marshal(req)
		if err != nil {
			return 0, RunResponse{}, err
		}
		resp, err := http.Post(base+"/run", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, RunResponse{}, err
		}
		defer resp.Body.Close()
		var rr RunResponse
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(b, &rr); err != nil {
				return resp.StatusCode, rr, err
			}
		}
		return resp.StatusCode, rr, nil
	}

	// Launch the slow in-flight request, wait until it is actually
	// executing, then deliver SIGTERM to ourselves.
	var wg sync.WaitGroup
	var slowCode int
	var slowResp RunResponse
	var slowErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		slowCode, slowResp, slowErr = post(RunRequest{Source: slowSrc})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never started executing")
		}
		time.Sleep(time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// The drain must become observable, then reject new work with 503
	// while the slow request is still in flight.
	for deadline = time.Now().Add(5 * time.Second); !s.Draining(); {
		if time.Now().After(deadline) {
			t.Fatal("SIGTERM did not begin the drain")
		}
		time.Sleep(time.Millisecond)
	}
	if s.InFlight() == 0 {
		t.Fatal("in-flight request finished before the drain was observed; slow source is too fast for this test")
	}
	code, _, err := post(RunRequest{Source: goodSrc})
	if err != nil {
		t.Fatalf("request during drain: %v", err)
	}
	if code != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: want 503, got %d", code)
	}

	// The in-flight request completes normally.
	wg.Wait()
	if slowErr != nil {
		t.Fatalf("in-flight request: %v", slowErr)
	}
	if slowCode != http.StatusOK {
		t.Fatalf("in-flight request: want 200, got %d", slowCode)
	}
	if slowResp.Steps == 0 {
		t.Fatalf("in-flight request returned no work: %+v", slowResp)
	}

	// And Serve returns nil — the clean exit.
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve: want nil on graceful drain, got %v", err)
		}
	case <-time.After(25 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
}

// TestClientDisconnectCancelsRun: a client that goes away mid-run stops
// the interpreter (the request context propagates into the hot loop) and
// frees the execution slot promptly.
func TestClientDisconnectCancelsRun(t *testing.T) {
	s := New(Config{
		MaxConcurrent:  1,
		DefaultTimeout: 30 * time.Second,
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + l.Addr().String()
	ctx, cancelServe := context.WithCancel(context.Background())
	defer cancelServe()
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ctx, l) }()

	// A request that would spin forever, abandoned by its client.
	body, _ := json.Marshal(RunRequest{Source: spinSrc, MaxSteps: 1 << 50})
	reqCtx, cancelReq := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, base+"/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("spin request never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancelReq()
	if err := <-done; err == nil {
		t.Fatal("abandoned request reported success")
	}

	// The slot must free: a normal request on the 1-slot server succeeds
	// without waiting for any budget to expire.
	start := time.Now()
	for {
		resp, err := http.Post(base+"/run", "application/json", bytes.NewReader(mustJSON(RunRequest{Source: goodSrc})))
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusOK {
			break
		}
		if time.Since(start) > 10*time.Second {
			t.Fatalf("slot never freed after client disconnect (last status %d)", code)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v to free the slot", elapsed)
	}
}

func mustJSON(v interface{}) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
