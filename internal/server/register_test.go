package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeRegistrar records register/deregister posts like pdcoord's fabric
// registrar would.
type fakeRegistrar struct {
	mu          sync.Mutex
	registers   []map[string]any
	deregisters []map[string]string
	failUntil   int // first N register posts answer 500
	seen        int
}

func (f *fakeRegistrar) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fabric/register", func(w http.ResponseWriter, r *http.Request) {
		var body map[string]any
		_ = json.NewDecoder(r.Body).Decode(&body)
		f.mu.Lock()
		f.seen++
		fail := f.seen <= f.failUntil
		if !fail {
			f.registers = append(f.registers, body)
		}
		f.mu.Unlock()
		if fail {
			http.Error(w, "not ready", http.StatusInternalServerError)
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "joined"})
	})
	mux.HandleFunc("/fabric/deregister", func(w http.ResponseWriter, r *http.Request) {
		var body map[string]string
		_ = json.NewDecoder(r.Body).Decode(&body)
		f.mu.Lock()
		f.deregisters = append(f.deregisters, body)
		f.mu.Unlock()
		_ = json.NewEncoder(w).Encode(map[string]any{"status": "ok", "removed": true})
	})
	return mux
}

func (f *fakeRegistrar) counts() (int, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.registers), len(f.deregisters)
}

// TestRegisterLoopHeartbeatsAndDeregistersOnDrain: the loop registers with
// the advertised tier, heartbeats on the interval, and posts exactly one
// departure announcement when the server drains.
func TestRegisterLoopHeartbeatsAndDeregistersOnDrain(t *testing.T) {
	fake := &fakeRegistrar{}
	coord := httptest.NewServer(fake.handler())
	t.Cleanup(coord.Close)

	s := New(Config{MaxConcurrent: 3})
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		s.RegisterLoop(context.Background(), RegisterConfig{
			Coordinator: coord.URL,
			Advertise:   "http://worker-1:9000",
			Interval:    20 * time.Millisecond,
			Logf:        t.Logf,
		})
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if regs, _ := fake.counts(); regs >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("register loop produced fewer than 3 beats in 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}

	s.BeginDrain()
	select {
	case <-loopDone:
	case <-time.After(5 * time.Second):
		t.Fatal("register loop did not exit on drain")
	}

	fake.mu.Lock()
	defer fake.mu.Unlock()
	first := fake.registers[0]
	if first["url"] != "http://worker-1:9000" {
		t.Fatalf("registered url = %v", first["url"])
	}
	if first["capacity"] != float64(3) {
		t.Fatalf("registered capacity = %v, want 3", first["capacity"])
	}
	if first["oracle"] != "bigfp" {
		t.Fatalf("registered oracle = %v", first["oracle"])
	}
	if len(fake.deregisters) != 1 {
		t.Fatalf("deregisters = %d, want exactly 1", len(fake.deregisters))
	}
	if d := fake.deregisters[0]; d["url"] != "http://worker-1:9000" || d["reason"] != "draining" {
		t.Fatalf("departure announcement = %v", d)
	}
}

// TestRegisterLoopSurvivesCoordinatorOutage: a worker started before its
// coordinator (or through an outage) keeps serving and keeps retrying; the
// fleet assembles as soon as the registrar answers.
func TestRegisterLoopSurvivesCoordinatorOutage(t *testing.T) {
	fake := &fakeRegistrar{failUntil: 3}
	coord := httptest.NewServer(fake.handler())
	t.Cleanup(coord.Close)

	s := New(Config{})
	ctx, cancel := context.WithCancel(context.Background())
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		s.RegisterLoop(ctx, RegisterConfig{
			Coordinator: coord.URL,
			Advertise:   "http://worker-2:9000",
			Interval:    10 * time.Millisecond,
			Logf:        t.Logf,
		})
	}()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if regs, _ := fake.counts(); regs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("register loop never got through the outage")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case <-loopDone:
	case <-time.After(5 * time.Second):
		t.Fatal("register loop did not exit on context cancel")
	}
	if _, deregs := fake.counts(); deregs != 1 {
		t.Fatalf("deregisters = %d, want 1 (shutdown announcement)", deregs)
	}
	fake.mu.Lock()
	defer fake.mu.Unlock()
	if d := fake.deregisters[0]; d["reason"] != "shutdown" {
		t.Fatalf("departure reason = %q, want shutdown", d["reason"])
	}
}
