package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"positdebug/internal/faultinject"
	"positdebug/internal/harness"
	"positdebug/internal/interp"
	"positdebug/internal/obs"
)

// This file is the worker side of the distributed campaign/profile fabric
// (internal/fabric is the coordinator side): shard endpoints that execute
// a slice of an embarrassingly-parallel sweep, and a batch endpoint that
// amortizes admission for many small runs. All three go through the same
// bounded admission queue as /run — a shard occupies one slot for its
// whole duration, so a saturated worker sheds further shards with 429 and
// the queue-depth-derived Retry-After, which is exactly the backpressure
// signal the coordinator's backoff honors.

// handleCampaignShard executes runs [lo, hi) of one architecture of a
// fault-injection campaign (faultinject.RunShard) and streams back the
// classified results plus the golden info they were judged against.
func (s *Server) handleCampaignShard(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, "bad-request", "POST only")
		return
	}
	release, code := s.admit(r.Context())
	if code != 0 {
		s.rejectAdmission(w, code)
		return
	}
	defer release()
	defer func() {
		if rec := recover(); rec != nil {
			s.writeErr(w, http.StatusInternalServerError, "internal-fault",
				fmt.Sprintf("panic serving shard: %v", rec))
		}
	}()

	// Shards carry the coordinator's trace context: the flight adopts the
	// stamped X-Request-Id and traceparent so the worker-side request span
	// lands under the coordinator's attempt span in the merged fleet trace.
	fl := s.newFlight(r)
	w.Header().Set(obs.RequestIDHeader, fl.id)

	var req faultinject.ShardRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.failRun(w, fl, http.StatusBadRequest, "bad-request", "invalid JSON body: "+err.Error())
		return
	}
	sp := fl.tr.Start("campaign-shard")
	res, err := faultinject.RunShard(r.Context(), req)
	sp.End()
	if err != nil {
		code, kind := shardStatusFor(err)
		s.failRun(w, fl, code, kind, err.Error())
		return
	}
	fl.span.End()
	s.reg.Counter(`pd_serve_shards_total{kind="campaign"}`).Inc()
	s.reg.Counter(`pd_serve_requests_total{code="200"}`).Inc()
	writeJSON(w, http.StatusOK, res)
	s.closeFlight(fl)
}

// handleProfileShard executes one slice of a profiling sweep
// (harness.RunProfileShard) and returns the canonical profile JSON, ready
// for the coordinator's commutative merge.
func (s *Server) handleProfileShard(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, "bad-request", "POST only")
		return
	}
	release, code := s.admit(r.Context())
	if code != 0 {
		s.rejectAdmission(w, code)
		return
	}
	defer release()
	defer func() {
		if rec := recover(); rec != nil {
			s.writeErr(w, http.StatusInternalServerError, "internal-fault",
				fmt.Sprintf("panic serving shard: %v", rec))
		}
	}()

	fl := s.newFlight(r)
	w.Header().Set(obs.RequestIDHeader, fl.id)

	var req harness.ProfileShard
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.failRun(w, fl, http.StatusBadRequest, "bad-request", "invalid JSON body: "+err.Error())
		return
	}
	sp := fl.tr.Start("profile-shard")
	prof, err := harness.RunProfileShard(r.Context(), req)
	sp.End()
	if err != nil {
		code, kind := shardStatusFor(err)
		s.failRun(w, fl, code, kind, err.Error())
		return
	}
	fl.span.End()
	s.reg.Counter(`pd_serve_shards_total{kind="profile"}`).Inc()
	s.reg.Counter(`pd_serve_requests_total{code="200"}`).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = prof.WriteJSON(w)
	s.closeFlight(fl)
}

// shardStatusFor maps a shard error onto the failure taxonomy: interpreter
// failures keep their /run semantics; anything else (validation, unknown
// workload, version skew, compile) is the coordinator's fault — 400, so a
// coordinator never retries a request that can't succeed.
func shardStatusFor(err error) (int, string) {
	var c *interp.Cancelled
	var re *interp.ResourceExhausted
	var f *interp.InternalFault
	var tr *interp.Trap
	switch {
	case errors.As(err, &c), errors.As(err, &re), errors.As(err, &f), errors.As(err, &tr):
		return statusFor(err)
	default:
		return http.StatusBadRequest, "bad-request"
	}
}

// BatchRequest is the POST /batch body: up to MaxBatch run requests
// admitted as one unit.
type BatchRequest struct {
	Requests []RunRequest `json:"requests"`
}

// BatchItem is one sub-request's outcome; exactly one of Response/Error is
// set, and Status carries the HTTP code the same request would have
// received on /run.
type BatchItem struct {
	Status   int            `json:"status"`
	Response *RunResponse   `json:"response,omitempty"`
	Error    *ErrorResponse `json:"error,omitempty"`
}

// BatchResponse is the POST /batch answer, responses in request order.
type BatchResponse struct {
	Responses []BatchItem `json:"responses"`
}

// handleBatch admits once and runs every sub-request sequentially in that
// one slot: N small runs cost one queue transition instead of N, and a
// coordinator submitting per-kernel probes can't starve interactive /run
// traffic by flooding the queue. Sub-request failures are per-item — one
// bad program doesn't fail its neighbors — and the batch as a whole
// answers 200 whenever admission succeeded.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, "bad-request", "POST only")
		return
	}
	release, code := s.admit(r.Context())
	if code != 0 {
		s.rejectAdmission(w, code)
		return
	}
	defer release()
	defer func() {
		if rec := recover(); rec != nil {
			s.writeErr(w, http.StatusInternalServerError, "internal-fault",
				fmt.Sprintf("panic serving batch: %v", rec))
		}
	}()

	var req BatchRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxSourceBytes*int64(s.cfg.MaxBatch))
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, "bad-request", "invalid JSON body: "+err.Error())
		return
	}
	if len(req.Requests) == 0 {
		s.writeErr(w, http.StatusBadRequest, "bad-request", "empty batch")
		return
	}
	if len(req.Requests) > s.cfg.MaxBatch {
		s.writeErr(w, http.StatusBadRequest, "bad-request",
			fmt.Sprintf("batch of %d exceeds the %d limit", len(req.Requests), s.cfg.MaxBatch))
		return
	}

	// One batch arrives under one trace binding; sub-requests get derived
	// ids (<batch-id>.N) so the coordinator can still line items up while
	// each flight stays separable.
	batchID, tc := traceBinding(r)
	out := BatchResponse{Responses: make([]BatchItem, 0, len(req.Requests))}
	for i, sub := range req.Requests {
		if err := r.Context().Err(); err != nil {
			// Client gone: stop burning the slot on answers nobody reads.
			s.reg.Counter(`pd_serve_requests_total{code="499"}`).Inc()
			return
		}
		subID := ""
		if batchID != "" {
			subID = fmt.Sprintf("%s.%d", batchID, i)
		}
		fl := s.buildFlight(subID, tc)
		resp, code, kind, msg := s.execRun(r.Context(), sub, fl)
		fl.span.End()
		if code != http.StatusOK {
			s.reg.Counter(`pd_serve_requests_total{code="` + fmt.Sprint(code) + `"}`).Inc()
			out.Responses = append(out.Responses, BatchItem{
				Status: code, Error: &ErrorResponse{Error: msg, Kind: kind, Req: fl.id},
			})
			if code >= 500 {
				s.dumpFlight(fl)
			}
			s.closeFlight(fl)
			continue
		}
		s.reg.Counter(`pd_serve_requests_total{code="200"}`).Inc()
		rc := resp
		out.Responses = append(out.Responses, BatchItem{Status: http.StatusOK, Response: &rc})
		if len(resp.Detections) > 0 {
			s.dumpFlight(fl)
		}
		s.closeFlight(fl)
	}
	s.reg.Counter("pd_serve_batches_total").Inc()
	writeJSON(w, http.StatusOK, out)
}
