package server

import (
	"runtime"
	"time"
)

// heapInUse is the watchdog's default memory probe. HeapInuse (spans in
// active use) tracks real pressure better than HeapAlloc, which includes
// garbage awaiting collection and would trigger degradation on churn.
func heapInUse() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// watchdog polls heap use every WatchdogInterval and steps the fleet one
// rung down the shadow-oracle degradation ladder (bigfp → double-double →
// double-double sampled) each time the heap is over SoftMemLimit,
// recovering one rung back once it falls below half the limit. The
// hysteresis gap keeps the service from oscillating at the boundary;
// degraded runs report Degraded=true (and name the serving oracle) so
// clients know the answer came from a cheaper tier rather than silently
// changing quality.
func (s *Server) watchdog(stop <-chan struct{}) {
	t := time.NewTicker(s.cfg.WatchdogInterval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		s.watchdogStep()
	}
}

// watchdogStep is one poll of the degradation state machine (split out so
// tests can drive it synchronously).
func (s *Server) watchdogStep() {
	heap := s.memUsage()
	shift := s.tierShift.Load()
	switch {
	case heap > s.cfg.SoftMemLimit && int(shift) < len(s.ladder)-1:
		s.tierShift.Store(shift + 1)
		s.reg.Counter("pd_serve_degrade_steps_total").Inc()
	case heap < s.cfg.SoftMemLimit/2 && shift > 0:
		s.tierShift.Store(shift - 1)
	default:
		return
	}
	s.reg.Gauge("pd_serve_precision_bits").Set(int64(s.EffectivePrecision()))
	s.reg.Gauge("pd_serve_shadow_tier").Set(int64(s.tierShift.Load()))
}
