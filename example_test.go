package positdebug_test

import (
	"fmt"

	positdebug "positdebug"
	"positdebug/internal/obs"
	"positdebug/internal/shadow"
)

// Example compiles the paper's Figure 2 program, runs it under PositDebug,
// and prints the detections.
func Example() {
	prog, err := positdebug.Compile(`
func main(): i64 {
	var a: p32 = 18309067625725952.0;
	var b: p32 = 3246642954240.0;
	var c: p32 = 143923904.0;
	var disc: p32 = b * b - 4.0 * a * c;
	if (disc > 0.0) { return 2; }
	if (disc == 0.0) { return 1; }
	return 0;
}`)
	if err != nil {
		panic(err)
	}
	res, err := prog.Exec("main")
	if err != nil {
		panic(err)
	}
	fmt.Println("roots found:", res.I64())
	fmt.Println("cancellation detected:", res.Summary.Has(shadow.KindCancellation))
	fmt.Println("branch flips:", res.Summary.BranchFlips)
	// Output:
	// roots found: 1
	// cancellation detected: true
	// branch flips: 1
}

// ExampleProgram_Exec shows the functional-options API: shadow execution
// with a custom configuration and a bounded event trace.
func ExampleProgram_Exec() {
	prog, err := positdebug.Compile(`
func main(): p32 {
	var big: p32 = 16777216.0;
	var r: p32 = (big + 1.0) - big;
	return r;
}`)
	if err != nil {
		panic(err)
	}
	cfg := shadow.DefaultConfig()
	cfg.ErrBitsThreshold = 10
	ring := obs.NewRing(64) // keeps only the most recent events
	res, err := prog.Exec("main", positdebug.WithShadow(cfg), positdebug.WithTrace(ring))
	if err != nil {
		panic(err)
	}
	fmt.Println("result:", res.P32())
	for _, e := range ring.Events() {
		if e.Kind == obs.EvDetect && e.Detect == "catastrophic-cancellation" {
			fmt.Println("detected:", e.Detect)
			break
		}
	}
	// Output:
	// result: 0
	// detected: catastrophic-cancellation
}

// ExampleRefactorToPosit rewrites an FP program to posits, like the
// paper's clang refactorer.
func ExampleRefactorToPosit() {
	out, err := positdebug.RefactorToPosit(`func scale(x: f64): f64 { return x * 2.5; }`)
	if err != nil {
		panic(err)
	}
	fmt.Print(out)
	// Output:
	// func scale(x: p32): p32 {
	// 	return x * 2.5;
	// }
}

// ExampleProgram_Run executes a program without instrumentation (the
// baseline of every measurement).
func ExampleProgram_Run() {
	prog, _ := positdebug.Compile(`
func main(): p32 {
	qclear();
	qmadd(1.5, 2.0);
	qadd(0.25);
	return qround_p32();
}`)
	res, _ := prog.Run("main")
	fmt.Println(res.P32())
	// Output:
	// 3.25
}
