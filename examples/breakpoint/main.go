// Conditional error breakpoints: the paper's gdb workflow (§3.1, §5.2) as
// a library API. Execution halts at the first operation whose error
// exceeds a chosen number of bits, returning the offending instruction's
// report and DAG — "insert a conditional breakpoint depending on the
// amount of the error and obtain a DAG of dependent instructions".
package main

import (
	"errors"
	"fmt"
	"log"

	positdebug "positdebug"
	"positdebug/internal/interp"
	"positdebug/internal/shadow"
)

const src = `
// The z recurrence from the CORDIC case study, reduced: repeatedly
// subtracting near-equal table values from a tiny angle accumulates error
// until everything cancels.
func main(): p32 {
	var z: p32 = 0.00000001;
	var step: p32 = 0.0000152587890625;
	for (var i: i64 = 0; i < 24; i += 1) {
		if (z >= 0.0) {
			z = z - step;
		} else {
			z = z + step;
		}
		step = step * 0.5;
	}
	return z;
}
`

func main() {
	prog, err := positdebug.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	cfg := shadow.DefaultConfig()
	cfg.ErrBitsThreshold = 40
	// Break as soon as any operation carries ≥ 45 bits of error.
	cfg.BreakOn = func(r *shadow.Report) bool { return r.ErrBits >= 45 }

	_, err = prog.Exec("main", positdebug.WithShadow(cfg))
	var stopped *interp.Stopped
	if !errors.As(err, &stopped) {
		fmt.Println("no operation crossed 45 bits of error; result:", err)
		return
	}
	rep := stopped.Reason.(*shadow.Report)
	fmt.Printf("breakpoint hit at %q (%s, line %s): %d bits of error\n",
		rep.Text, rep.Func, rep.Pos, rep.ErrBits)
	fmt.Printf("  program value: %s\n  shadow value:  %s\n\n", rep.Program, rep.Shadow)
	fmt.Println("instruction DAG at the break point:")
	fmt.Println(rep.DAG.Render())
}
