// The §5.2.1 case study: a posit math library built with CORDIC, and the
// debugging session that motivated PositDebug. For θ = 1e−8 the CORDIC
// sin carries ~30% relative error; shadow execution reveals branch flips
// in the z recurrence (the paper pinpoints iteration 29) and gradual
// error accumulation in y.
package main

import (
	"fmt"
	"log"
	"math"

	"positdebug/internal/cordic"
	"positdebug/internal/harness"
	"positdebug/internal/posit"
)

func main() {
	// The Go-level posit math library: accurate over most of [0, π/2]…
	fmt.Println("posit CORDIC math library vs libm:")
	for _, theta := range []float64{0.1, 0.5, 1.0, 1.5} {
		s := cordic.Sin(posit.P32FromFloat64(theta))
		fmt.Printf("  sin(%.2f) = %-12.9g  libm: %-12.9g\n", theta, s.Float64(), math.Sin(theta))
	}

	// …but badly wrong for tiny angles:
	theta := 1e-8
	s := cordic.Sin(posit.P32FromFloat64(theta))
	fmt.Printf("\n  sin(%g) = %g — libm says %g (relative error %.3f!)\n\n",
		theta, s.Float64(), math.Sin(theta), math.Abs(s.Float64()-math.Sin(theta))/math.Sin(theta))

	// Debug the same algorithm (as a PCL program) under PositDebug:
	caseStudy, err := harness.RunCordic(theta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(caseStudy)
}
