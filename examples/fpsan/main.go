// FPSanitizer example: the same metadata design serves IEEE floating-
// point programs (§4.3). A classic f32 absorption bug is detected, and
// the Herbgrind-style baseline runtime shows why constant-size metadata
// matters: its trace metadata grows with every dynamic instruction.
package main

import (
	"fmt"
	"log"

	positdebug "positdebug"
	"positdebug/internal/shadow"
)

const src = `
// Computing a small mean by accumulating into a float32: the additions
// absorb, and the result is noticeably off.
var xs: [2048]f32;

func main(): f32 {
	for (var i: i64 = 0; i < 2048; i += 1) {
		xs[i] = 0.1;
	}
	var s: f32 = 16777216.0;   // pretend a prior large partial sum
	for (var i: i64 = 0; i < 2048; i += 1) {
		s = s + xs[i];
	}
	var delta: f32 = s - 16777216.0;
	print(delta);               // should be 204.8
	return delta;
}
`

func main() {
	prog, err := positdebug.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	base, err := prog.Run("main")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program computes delta = %v (exact: 204.8 — every addition was absorbed)\n\n", base.F64())

	cfg := shadow.DefaultConfig()
	cfg.OutputThreshold = 10
	res, err := prog.Exec("main", positdebug.WithShadow(cfg))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("FPSanitizer:")
	fmt.Println(res.Summary)
	for i, r := range res.Summary.Reports {
		if i >= 1 {
			break
		}
		fmt.Println(r)
	}

	hg, err := prog.Exec("main", positdebug.WithHerbgrind(256))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHerbgrind-style run of the same program accumulated %d trace nodes\n", hg.TraceNodes)
	fmt.Println("(unbounded in the dynamic instruction count — the design PositDebug replaces")
	fmt.Println("with constant-size per-location metadata).")
}
