// Quickstart: compile a posit program, run it under PositDebug shadow
// execution, and print the detected numerical errors with their
// instruction DAGs — the paper's Figure 2 example end to end.
package main

import (
	"fmt"
	"log"

	positdebug "positdebug"
	"positdebug/internal/shadow"
)

const src = `
// Count the real roots of ax² + bx + c (Figure 2 of the paper).
func rootcount(a: p32, b: p32, c: p32): i64 {
	var t1: p32 = b * b;
	var t2: p32 = 4.0 * a * c;
	var t3: p32 = t1 - t2;
	if (t3 > 0.0) { return 2; }
	if (t3 == 0.0) { return 1; }
	return 0;
}

func main(): i64 {
	var r: i64 = rootcount(18309067625725952.0, 3246642954240.0, 143923904.0);
	print(r);
	return r;
}
`

func main() {
	prog, err := positdebug.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Baseline: the program claims the equation has ONE root.
	base, err := prog.Run("main")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program says the equation has %d root(s)\n", base.I64())
	fmt.Println("(exact arithmetic says 2 — the discriminant is ≈2.405e20, not 0)")
	fmt.Println()

	// 2. PositDebug: shadow execution pinpoints why.
	res, err := prog.Exec("main")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Summary)
	for _, r := range res.Summary.Reports {
		if r.Kind == shadow.KindCancellation || r.Kind == shadow.KindBranchFlip {
			fmt.Println(r)
			fmt.Println()
		}
	}
}
