// The §5.2.3 case study: root finding for a quadratic with the paper's
// inputs (equations 5–7). Beyond the two classic FP cancellations,
// PositDebug flags a posit-specific third error source: the division by
// 2a pushes the result's regime wider and sheds fraction bits.
package main

import (
	"fmt"
	"log"

	"positdebug/internal/harness"
)

func main() {
	res, err := harness.RunQuadratic()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
}
