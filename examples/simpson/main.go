// The §5.2.2 case study: computing ∫x²dx by Simpson's rule. The naive
// posit accumulation drifts once the running sum leaves the golden zone;
// PositDebug attributes the error to the accumulating additions, and
// replacing them with the quire (fused accumulation) fixes the result.
package main

import (
	"fmt"
	"log"

	"positdebug/internal/harness"
)

func main() {
	res, err := harness.RunSimpson(20000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	fmt.Println("The fix: accumulate with qadd/qmadd into the quire and round once")
	fmt.Println("with qround_p32() — the posit standard's fused-operation support.")
}
