package positdebug

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"

	"positdebug/internal/backend"
	"positdebug/internal/herbgrind"
	"positdebug/internal/instrument"
	"positdebug/internal/interp"
	"positdebug/internal/ir"
	"positdebug/internal/obs"
	"positdebug/internal/profile"
	"positdebug/internal/shadow"
	"positdebug/internal/shadow/oracle"
)

// Option configures one execution (Program.Exec, Debugger.Exec) or one warm
// session (Program.Session). Options compose freely; incompatible
// combinations (e.g. WithBaseline with WithShadow) are reported as errors
// instead of being silently resolved.
type Option func(*execConfig)

type execConfig struct {
	ctx        context.Context
	shadowCfg  shadow.Config
	shadowSet  bool
	skip       []string
	limits     interp.Limits
	limitsSet  bool
	wrap       func(interp.Hooks) interp.Hooks
	trace      obs.Sink
	traceSet   bool
	metrics    *obs.Registry
	metricsSet bool
	herb       bool
	herbPrec   uint
	baseline   bool
	args       []uint64
	prof       *profile.Collector
	profSet    bool
	sample     int64
	sampleSet  bool
	spans      *obs.Tracer
	backend    backend.Kind
	backendSet bool
	oracleKind oracle.Kind
	oracleSet  bool
}

// WithContext governs the run with a context: cancelling it stops the
// interpreter cooperatively within one poll interval (a few thousand
// instructions) and the run returns a structured *interp.Cancelled —
// distinct from the *interp.ResourceExhausted a budget trip produces.
// This is a per-run option (like WithLimits): pass it to Exec or
// Debugger.Exec, not Session.
func WithContext(ctx context.Context) Option {
	return func(ec *execConfig) { ec.ctx = ctx }
}

// context returns the run's governing context (Background when unset).
func (ec *execConfig) context() context.Context {
	if ec.ctx != nil {
		return ec.ctx
	}
	return context.Background()
}

// WithShadow selects shadow execution with the given configuration.
// Omitting it (and WithBaseline/WithHerbgrind) runs with
// shadow.DefaultConfig().
func WithShadow(cfg shadow.Config) Option {
	return func(ec *execConfig) { ec.shadowCfg = cfg; ec.shadowSet = true }
}

// WithSkip leaves the named functions uninstrumented — the paper's
// incremental-deployment mode (§4.1). The module is instrumented fresh for
// the run (or once per session), so prefer a Session when running many
// times with the same skip set.
func WithSkip(fns ...string) Option {
	return func(ec *execConfig) { ec.skip = append(ec.skip, fns...) }
}

// WithLimits bounds the run with a wall-clock timeout and step budget,
// reported as structured *interp.ResourceExhausted errors.
func WithLimits(lim interp.Limits) Option {
	return func(ec *execConfig) { ec.limits = lim; ec.limitsSet = true }
}

// WithHooksWrapper decorates the shadow runtime's hooks before they attach
// to the machine — the seam fault injectors plug into. The wrapper runs
// once per attempt, so a deterministic decorator replays its schedule on a
// degraded retry.
func WithHooksWrapper(w func(interp.Hooks) interp.Hooks) Option {
	return func(ec *execConfig) { ec.wrap = w }
}

// WithTrace streams structured events (run lifecycle, detections,
// precision degradation) into the sink. Detection events are not capped by
// shadow.Config.MaxReports; bound memory with a bounded sink such as
// obs.NewRing. Passing nil disables a session-level sink for one run.
func WithTrace(sink obs.Sink) Option {
	return func(ec *execConfig) { ec.trace = sink; ec.traceSet = true }
}

// WithMetrics accumulates counters and histograms into the registry:
// detections by kind, shadowed ops, per-instruction error-bits
// distributions, executed steps, and per-opcode timing attribution.
func WithMetrics(reg *obs.Registry) Option {
	return func(ec *execConfig) { ec.metrics = reg; ec.metricsSet = true }
}

// WithHerbgrind selects the Herbgrind-style baseline runtime
// (per-dynamic-op trace metadata, §5.4 comparison) at the given shadow
// precision (0 means 256). The trace-node count lands in
// Result.TraceNodes.
func WithHerbgrind(precision uint) Option {
	return func(ec *execConfig) { ec.herb = true; ec.herbPrec = precision }
}

// WithBaseline runs the uninstrumented program — no shadow execution, no
// detections. Limits, tracing and metrics still apply.
func WithBaseline() Option {
	return func(ec *execConfig) { ec.baseline = true }
}

// WithArgs passes argument bit patterns to the entry function (see P32Arg,
// F64Arg and friends for encoding helpers).
func WithArgs(args ...uint64) Option {
	return func(ec *execConfig) { ec.args = append(ec.args, args...) }
}

// WithProfile accumulates per-static-instruction error statistics into the
// collector: dynamic counts, the error-bits histogram, cancellation
// severity, saturation/NaR tallies, and (when the collector's Timing flag
// is set) shadow-op latency. The collector persists across runs — snapshot
// it with profile.Collector.Snapshot and merge snapshots across workers
// (profile.Merge is commutative, so the merged profile is byte-identical
// whatever the worker count). Requires shadow execution.
func WithProfile(c *profile.Collector) Option {
	return func(ec *execConfig) { ec.prof = c; ec.profSet = true }
}

// WithSampling shadows every nth dynamic instance of each static compute
// instruction (binary/unary ops, casts, FMA, quire rounding) and skips the
// rest, cutting shadow overhead roughly by n at the cost of missing
// detections on skipped instances. Structural events always run, so
// metadata propagation and the output oracle stay exact. The decision is
// deterministic — (instruction id, occurrence counter), counters reset per
// run — so sampled runs are as reproducible as full ones. n ≤ 1 means full
// shadow. Requires shadow execution.
func WithSampling(n int) Option {
	return func(ec *execConfig) { ec.sample = int64(n); ec.sampleSet = true }
}

// WithShadowOracle selects the shadow-arithmetic backend for the run or
// session: oracle.BigFP (arbitrary precision, the default; governed by
// shadow.Config.Precision), oracle.DD (allocation-free double-double,
// ~106 bits) or oracle.Residue (float64 estimate with per-op rounding
// residues, 53 bits). It composes with WithShadow — the oracle choice
// overrides the config's Oracle field — and requires shadow execution.
// Fixed-precision oracles do not take part in shadow-memory precision
// degradation: if a dd/residue run trips the budget, the structured
// *interp.ResourceExhausted is returned as-is.
func WithShadowOracle(kind oracle.Kind) Option {
	return func(ec *execConfig) { ec.oracleKind = kind; ec.oracleSet = true }
}

// WithBackend selects the execution engine for the run or session: the
// tree-walking reference interpreter (backend.Treewalk, the default) or the
// fused-bytecode VM (backend.VM). The two produce byte-identical detection
// reports, traces, campaign artifacts, and merged profiles; the VM is the
// fast path for shadow execution, the tree-walker the differential-testing
// oracle. Runs that need per-IR-instruction granularity (instruction
// tracing, per-opcode timing via WithMetrics) fall back to the tree-walker
// transparently.
func WithBackend(k backend.Kind) Option {
	return func(ec *execConfig) { ec.backend = k; ec.backendSet = true }
}

// WithSpans emits causal spans (shadow-exec, report) for the run into the
// tracer — the feed behind the Chrome-trace export (obs.WriteChromeTrace).
// The tracer's sink sees span-begin/span-end events interleaved with the
// run's other events. Requires nothing special; baseline and Herbgrind
// runs emit an exec span.
func WithSpans(tr *obs.Tracer) Option {
	return func(ec *execConfig) { ec.spans = tr }
}

func buildExecConfig(opts []Option) (*execConfig, error) {
	ec := &execConfig{}
	for _, o := range opts {
		o(ec)
	}
	switch {
	case ec.baseline && ec.herb:
		return nil, fmt.Errorf("positdebug: WithBaseline conflicts with WithHerbgrind")
	case ec.baseline && ec.shadowSet:
		return nil, fmt.Errorf("positdebug: WithBaseline conflicts with WithShadow")
	case ec.herb && ec.shadowSet:
		return nil, fmt.Errorf("positdebug: WithHerbgrind conflicts with WithShadow")
	case (ec.baseline || ec.herb) && len(ec.skip) > 0:
		return nil, fmt.Errorf("positdebug: WithSkip requires shadow execution")
	case (ec.baseline || ec.herb) && ec.wrap != nil:
		return nil, fmt.Errorf("positdebug: WithHooksWrapper requires shadow execution")
	case (ec.baseline || ec.herb) && (ec.profSet || ec.sampleSet):
		return nil, fmt.Errorf("positdebug: WithProfile/WithSampling require shadow execution")
	case (ec.baseline || ec.herb) && ec.oracleSet:
		return nil, fmt.Errorf("positdebug: WithShadowOracle requires shadow execution")
	case ec.sampleSet && ec.sample < 0:
		return nil, fmt.Errorf("positdebug: negative sampling stride %d", ec.sample)
	}
	if !ec.shadowSet && !ec.baseline && !ec.herb {
		ec.shadowCfg = shadow.DefaultConfig()
	}
	if ec.oracleSet {
		ec.shadowCfg.Oracle = ec.oracleKind
	}
	if ec.herb && ec.herbPrec == 0 {
		ec.herbPrec = 256
	}
	return ec, nil
}

// Exec runs the program's named function. With no options it is shadow
// execution under shadow.DefaultConfig(); options select the baseline or
// Herbgrind runtimes, pass arguments, bound the run, decorate hooks, and
// attach event tracing and metrics. Exec subsumes the deprecated Debug*
// entry points: shadow runs always honor execution limits and, when
// shadow.Config.MaxShadowBytes is set, retry at degraded precision
// (halving down to shadow.MinPrecision) instead of failing, flagging the
// result Degraded.
func (p *Program) Exec(fn string, opts ...Option) (*Result, error) {
	ec, err := buildExecConfig(opts)
	if err != nil {
		return nil, err
	}
	switch {
	case ec.baseline:
		return execBaseline(p.Module, ec, fn)
	case ec.herb:
		return execHerbgrind(p.Instrumented(), ec, fn)
	}
	mod := p.Instrumented()
	if len(ec.skip) > 0 {
		skipSet := make(map[string]bool, len(ec.skip))
		for _, s := range ec.skip {
			skipSet[s] = true
		}
		mod = instrument.Instrument(p.Module, instrument.Options{Skip: skipSet})
	}
	return execShadowModule(mod, ec, fn)
}

// monoBase anchors the monotonic clock behind shadow-op latency timing.
var monoBase = time.Now()

// monoNanos returns monotonic nanoseconds since a process-local base.
func monoNanos() int64 { return int64(time.Since(monoBase)) }

// samplingFor returns the sampling/timing decorator a run needs — non-nil
// when the stride subsamples (n > 1) or the collector wants latency
// timing — with its callbacks bound to the collector. The caller sets
// Inner.
func samplingFor(c *profile.Collector, n int64) *interp.Sampling {
	if n <= 1 && (c == nil || !c.Timing) {
		return nil
	}
	s := interp.NewSampling(nil, n)
	if c != nil {
		s.OnSkip = c.Skipped
		if c.Timing {
			s.Clock = monoNanos
			s.OnTime = c.Latency
		}
	}
	return s
}

// shadowHooks builds one attempt's hooks chain: runtime innermost, then
// the sampling/timing decorator, then the user wrapper (fault injectors)
// outermost — so injected faults still reach the oracle on sampled runs.
func shadowHooks(rt *shadow.Runtime, cfg shadow.Config, ec *execConfig) interp.Hooks {
	var hooks interp.Hooks = rt
	if s := samplingFor(cfg.Profile, ec.sample); s != nil {
		s.Inner = hooks
		hooks = s
	}
	if ec.wrap != nil {
		hooks = ec.wrap(hooks)
	}
	return hooks
}

// emitRunStart/emitRunEnd bracket one execution in the event stream.
func emitRunStart(sink obs.Sink, fn string, precision uint) {
	if sink == nil {
		return
	}
	e := obs.NewEvent(obs.EvRunStart)
	e.Func = fn
	e.Precision = precision
	sink.Emit(e)
}

func emitRunEnd(sink obs.Sink, outcome string, steps int64, precision uint) {
	if sink == nil {
		return
	}
	e := obs.NewEvent(obs.EvRunEnd)
	e.Outcome = outcome
	e.Steps = steps
	e.Precision = precision
	sink.Emit(e)
}

// flushRunMetrics records the per-run interpreter-side metrics: executed
// steps and, when profiling ran, per-opcode counts and time.
func flushRunMetrics(reg *obs.Registry, steps int64, prof *interp.OpProfile) {
	if reg == nil {
		return
	}
	reg.Counter("pd_steps_total").Add(steps)
	reg.Counter("pd_runs_total").Inc()
	if prof == nil {
		return
	}
	for _, s := range prof.Stats() {
		reg.Counter(`pd_op_count{op="` + s.Op.String() + `"}`).Add(s.Count)
		reg.Counter(`pd_op_nanos{op="` + s.Op.String() + `"}`).Add(s.Nanos)
	}
}

func execBaseline(mod *ir.Module, ec *execConfig, fn string) (*Result, error) {
	m := interp.New(mod)
	m.Backend = ec.backend
	var out bytes.Buffer
	m.Out = &out
	if ec.metrics != nil {
		m.Prof = &interp.OpProfile{}
	}
	emitRunStart(ec.trace, fn, 0)
	sp := ec.spans.Start("exec")
	v, err := m.RunContext(ec.context(), fn, ec.limits, ec.args...)
	sp.End()
	flushRunMetrics(ec.metrics, m.Steps(), m.Prof)
	if err != nil {
		emitRunEnd(ec.trace, "error", m.Steps(), 0)
		return nil, err
	}
	emitRunEnd(ec.trace, "ok", m.Steps(), 0)
	return &Result{Value: v, Output: out.String(), Steps: m.Steps()}, nil
}

func execHerbgrind(mod *ir.Module, ec *execConfig, fn string) (*Result, error) {
	rt := herbgrind.New(mod, ec.herbPrec)
	m := interp.New(mod)
	m.Backend = ec.backend
	m.Hooks = rt
	var out bytes.Buffer
	m.Out = &out
	if ec.metrics != nil {
		m.Prof = &interp.OpProfile{}
	}
	emitRunStart(ec.trace, fn, ec.herbPrec)
	sp := ec.spans.Start("exec")
	v, err := m.RunContext(ec.context(), fn, ec.limits, ec.args...)
	sp.End()
	flushRunMetrics(ec.metrics, m.Steps(), m.Prof)
	if err != nil {
		emitRunEnd(ec.trace, "error", m.Steps(), ec.herbPrec)
		return nil, err
	}
	emitRunEnd(ec.trace, "ok", m.Steps(), ec.herbPrec)
	return &Result{
		Value: v, Output: out.String(), Steps: m.Steps(),
		TraceNodes: rt.TraceNodes(),
	}, nil
}

// execShadowModule runs the degradation loop on fresh runtimes: when a run
// exceeds the shadow-memory budget, retry at half the precision down to
// shadow.MinPrecision, flagging the result Degraded.
func execShadowModule(mod *ir.Module, ec *execConfig, fn string) (*Result, error) {
	cfg := ec.shadowCfg
	if ec.traceSet {
		cfg.Events = ec.trace
	}
	if ec.metricsSet {
		cfg.Metrics = ec.metrics
	}
	if ec.profSet {
		cfg.Profile = ec.prof
	}
	emitRunStart(cfg.Events, fn, cfg.Precision)
	return execShadowLoop(mod, cfg, ec, fn, cfg.Precision)
}

// execShadowLoop is the degradation loop proper; requested is the
// precision Degraded is judged against (the warm-session retry path enters
// below the originally requested precision).
func execShadowLoop(mod *ir.Module, cfg shadow.Config, ec *execConfig, fn string, requested uint) (*Result, error) {
	for {
		rt, err := shadow.New(mod, cfg)
		if err != nil {
			return nil, err
		}
		m := interp.New(mod)
		m.Backend = ec.backend
		m.Hooks = shadowHooks(rt, cfg, ec)
		var out bytes.Buffer
		m.Out = &out
		if cfg.Metrics != nil {
			m.Prof = &interp.OpProfile{}
		}
		sp := ec.spans.Start("shadow-exec")
		v, err := m.RunContext(ec.context(), fn, ec.limits, ec.args...)
		sp.End()
		flushRunMetrics(cfg.Metrics, m.Steps(), m.Prof)
		if err != nil {
			var re *interp.ResourceExhausted
			// Only the bigfp oracle has a precision knob to degrade; a
			// fixed-precision oracle tripping the budget surfaces the
			// structured error (the server-side watchdog degrades across
			// oracles instead).
			if errors.As(err, &re) && re.Resource == interp.ResShadowMemory &&
				cfg.OracleKind() == oracle.BigFP && cfg.Precision > shadow.MinPrecision {
				cfg.Precision /= 2
				if cfg.Precision < shadow.MinPrecision {
					cfg.Precision = shadow.MinPrecision
				}
				if cfg.Events != nil {
					e := obs.NewEvent(obs.EvDegrade)
					e.Precision = cfg.Precision
					cfg.Events.Emit(e)
				}
				continue
			}
			emitRunEnd(cfg.Events, "error", m.Steps(), cfg.Precision)
			return nil, err
		}
		rp := ec.spans.Start("report")
		summary := rt.Summary()
		rp.End()
		res := &Result{Value: v, Output: out.String(), Steps: m.Steps(), Summary: summary}
		res.ShadowOracle = cfg.OracleKind()
		res.ShadowPrecision = oracle.NominalPrecision(res.ShadowOracle, cfg.Precision)
		res.Degraded = cfg.Precision != requested
		outcome := "ok"
		if res.Degraded {
			outcome = "degraded"
		}
		emitRunEnd(cfg.Events, outcome, m.Steps(), cfg.Precision)
		return res, nil
	}
}

// Session builds a warm-reusable shadow-execution session configured by
// options: WithShadow selects the configuration (default
// shadow.DefaultConfig()), WithSkip instruments with functions left out,
// and WithTrace/WithMetrics/WithProfile/WithSampling bind session-level
// sinks and sampled-shadow state. Baseline/Herbgrind
// and per-run options (limits, hook wrappers, args) are rejected — pass
// those to Debugger.Exec.
//
// The instrumented module is built (and, without WithSkip, cached on the
// Program) here, so concurrent workers construct sessions only after one
// call has populated the cache — or sequentially, as parallel.MapWorker
// does.
func (p *Program) Session(opts ...Option) (*Debugger, error) {
	ec, err := buildExecConfig(opts)
	if err != nil {
		return nil, err
	}
	if ec.baseline || ec.herb {
		return nil, fmt.Errorf("positdebug: Session supports shadow execution only")
	}
	if ec.wrap != nil || len(ec.args) > 0 || ec.limitsSet || ec.ctx != nil {
		return nil, fmt.Errorf("positdebug: WithHooksWrapper/WithArgs/WithLimits/WithContext are per-run options; pass them to Debugger.Exec")
	}
	cfg := ec.shadowCfg
	if ec.traceSet {
		cfg.Events = ec.trace
	}
	if ec.metricsSet {
		cfg.Metrics = ec.metrics
	}
	if ec.profSet {
		cfg.Profile = ec.prof
	}
	mod := p.Instrumented()
	if len(ec.skip) > 0 {
		skipSet := make(map[string]bool, len(ec.skip))
		for _, s := range ec.skip {
			skipSet[s] = true
		}
		mod = instrument.Instrument(p.Module, instrument.Options{Skip: skipSet})
	}
	rt, err := shadow.New(mod, cfg)
	if err != nil {
		return nil, err
	}
	m := interp.New(mod)
	m.Backend = ec.backend
	d := &Debugger{prog: p, cfg: cfg, mod: mod, rt: rt, m: m, sampleN: ec.sample}
	m.Out = &d.out
	return d, nil
}

// Exec runs the session's program on the warm runtime and machine.
// Accepted options: WithLimits, WithHooksWrapper, WithArgs, WithTrace,
// WithMetrics, WithProfile, WithSampling, WithSpans (sink-like options
// rebind the session's sinks — campaign workers point each run at its own
// buffer). Options that change the
// session's instrumentation (WithShadow, WithSkip, WithBaseline,
// WithHerbgrind) are rejected; build a new Session instead.
//
// Degraded retries run on transient runtimes at the reduced precision; the
// session itself stays at the requested precision, so one budget-tripping
// run does not degrade subsequent ones.
func (d *Debugger) Exec(fn string, opts ...Option) (*Result, error) {
	ec := &execConfig{}
	for _, o := range opts {
		o(ec)
	}
	if ec.shadowSet || ec.oracleSet || len(ec.skip) > 0 || ec.baseline || ec.herb {
		return nil, fmt.Errorf("positdebug: WithShadow/WithShadowOracle/WithSkip/WithBaseline/WithHerbgrind configure a session; build a new Session instead")
	}
	if ec.sampleSet && ec.sample < 0 {
		return nil, fmt.Errorf("positdebug: negative sampling stride %d", ec.sample)
	}
	if ec.traceSet {
		d.rt.SetEvents(ec.trace)
		d.cfg.Events = ec.trace
	}
	if ec.metricsSet {
		d.rt.SetMetrics(ec.metrics)
		d.cfg.Metrics = ec.metrics
	}
	if ec.profSet {
		d.rt.SetProfile(ec.prof)
		d.cfg.Profile = ec.prof
		d.sampler = nil
	}
	if ec.sampleSet {
		d.sampleN = ec.sample
		d.sampler = nil
	}
	if ec.backendSet {
		d.m.Backend = ec.backend
	}
	if d.sampler == nil {
		d.sampler = samplingFor(d.cfg.Profile, d.sampleN)
		if d.sampler != nil {
			d.sampler.Inner = d.rt
		}
	}
	var base interp.Hooks = d.rt
	if d.sampler != nil {
		base = d.sampler
	}
	if ec.wrap != nil {
		d.m.Hooks = ec.wrap(base)
	} else {
		d.m.Hooks = base
	}
	if d.cfg.Metrics != nil {
		if d.m.Prof == nil {
			d.m.Prof = &interp.OpProfile{}
		} else {
			d.m.Prof.Reset()
		}
	} else {
		d.m.Prof = nil
	}
	d.out.Reset()
	emitRunStart(d.cfg.Events, fn, d.cfg.Precision)
	sp := ec.spans.Start("shadow-exec")
	v, err := d.m.RunContext(ec.context(), fn, ec.limits, ec.args...)
	sp.End()
	flushRunMetrics(d.cfg.Metrics, d.m.Steps(), d.m.Prof)
	if err != nil {
		var re *interp.ResourceExhausted
		if errors.As(err, &re) && re.Resource == interp.ResShadowMemory &&
			d.cfg.OracleKind() == oracle.BigFP && d.cfg.Precision > shadow.MinPrecision {
			cfg := d.cfg
			cfg.Precision /= 2
			if cfg.Precision < shadow.MinPrecision {
				cfg.Precision = shadow.MinPrecision
			}
			if cfg.Events != nil {
				e := obs.NewEvent(obs.EvDegrade)
				e.Precision = cfg.Precision
				cfg.Events.Emit(e)
			}
			// Retry on transient runtimes at the reduced precision; the loop
			// carries the session's sinks (with any per-run overrides already
			// applied) and emits the closing run-end itself.
			res, err := execShadowLoop(d.mod, cfg, &execConfig{
				ctx: ec.ctx, limits: ec.limits, wrap: ec.wrap, args: ec.args,
				sample: d.sampleN, spans: ec.spans, backend: d.m.Backend,
			}, fn, d.cfg.Precision)
			if res != nil {
				res.Degraded = true
			}
			return res, err
		}
		emitRunEnd(d.cfg.Events, "error", d.m.Steps(), d.cfg.Precision)
		return nil, err
	}
	rp := ec.spans.Start("report")
	summary := d.rt.Summary()
	rp.End()
	res := &Result{Value: v, Output: d.out.String(), Steps: d.m.Steps(), Summary: summary}
	res.ShadowOracle = d.cfg.OracleKind()
	res.ShadowPrecision = oracle.NominalPrecision(res.ShadowOracle, d.cfg.Precision)
	emitRunEnd(d.cfg.Events, "ok", d.m.Steps(), d.cfg.Precision)
	return res, nil
}
