GO ?= go

.PHONY: all build vet test race fuzz fuzz-frontend fuzz-bytecode campaign-smoke bench-json bench-serve bench-profile bench-fabric trace-smoke profile-smoke fabric-smoke chaos-smoke fleet-obs-smoke vm-smoke oracle-smoke

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./internal/faultinject/ ./internal/interp/ ./internal/parallel/ ./internal/server/
	$(GO) test -race -count=1 -cpu=1,4 -run ParallelDeterminism ./internal/faultinject/ ./internal/harness/

# Regenerate the checked-in benchmark report (BENCH_shadow.json),
# including the per-oracle speed/precision frontier rows (@dd/@residue).
# CI runs the same tool with -short as a smoke check and uploads the
# artifact.
bench-json: build
	$(GO) run ./cmd/pdbench -oracle bigfp,dd,residue -out BENCH_shadow.json

# Cross-oracle differential suite under the race detector at -cpu=1,4:
# the dd oracle must agree with bigfp-256 on every exhaustive ⟨8,0⟩ op
# pair and on the full §5.1 detection suite's verdicts (both backends),
# the cheap oracles must run allocation-free warm, and the server's
# watchdog must walk the bigfp → dd → dd-sampled ladder under memory
# pressure. CI runs this as the oracle-smoke job.
oracle-smoke: build
	$(GO) test -race -count=1 -cpu=1,4 -run 'TestOracleDiff' .
	$(GO) test -race -count=1 -cpu=1,4 ./internal/shadow/oracle/
	$(GO) test -race -count=1 -cpu=1,4 -run 'TestWarmRuntimeAllocsOracles' ./internal/shadow/
	$(GO) test -race -count=1 -cpu=1,4 -run 'TestDegradation' ./internal/server/
	@echo "oracle-smoke: dd/residue agree with bigfp within contract ✓"

# Regenerate the checked-in serve-path report (BENCH_serve.json):
# requests/sec and p50/p99 latency through the full HTTP service.
bench-serve: build
	$(GO) run ./cmd/pdbench -serve -out BENCH_serve.json

# Regenerate the checked-in profiler-overhead report (BENCH_profile.json):
# full-shadow vs sampled-shadow cost and checked-op fraction on gemm.
bench-profile: build
	$(GO) run ./cmd/pdbench -profile -out BENCH_profile.json

# Regenerate the checked-in fabric report (BENCH_fabric.json): 1- vs
# 3-worker distributed campaign throughput, the fleet-tracing overhead
# row, and merged-report latency. Production shard size and a campaign
# long enough that per-shard fixed costs don't masquerade as overhead.
bench-fabric: build
	$(GO) run ./cmd/pdbench -fabric -fabric-runs 240 -fabric-shard-size 16 -out BENCH_fabric.json

fuzz:
	$(GO) test . -run FuzzInjector -fuzz FuzzInjector -fuzztime 30s

# The service compiles untrusted request bodies: the parser and type
# checker must error, never panic, on arbitrary input. CI runs this as
# the fuzz-smoke job.
fuzz-frontend:
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime 30s ./internal/lang/
	$(GO) test -run xxx -fuzz FuzzTypeCheck -fuzztime 30s ./internal/lang/

# Bytecode pipeline fuzzing: the chunk decoder must reject arbitrary bytes
# cleanly (and verifier-accepted chunks must roundtrip), and the compiler
# must never emit a chunk the verifier rejects nor one the VM executes
# differently from the tree-walker.
fuzz-bytecode:
	$(GO) test -run xxx -fuzz FuzzChunkLoad -fuzztime 30s ./internal/bytecode/
	$(GO) test -run xxx -fuzz FuzzCompile -fuzztime 30s .

# Two-backend differential suite under the race detector at -cpu=1,4:
# detection runs, polybench kernels, step limits, a fault campaign, a
# profile, sampled injection, and warm sessions must all be byte-identical
# between the tree-walking interpreter and the bytecode VM, sequential and
# 4-worker alike. A pd run of the Figure 2 program on each backend is then
# diffed end to end. CI runs this as the vm-smoke job.
VMDIR ?= /tmp/pd-vm-smoke
vm-smoke: build
	$(GO) test -race -count=1 -cpu=1,4 -run TestBackendDiff .
	mkdir -p $(VMDIR)
	$(GO) run ./cmd/pd -backend=treewalk testdata/rootcount.pcl > $(VMDIR)/treewalk.txt
	$(GO) run ./cmd/pd -backend=vm testdata/rootcount.pcl > $(VMDIR)/vm.txt
	diff $(VMDIR)/treewalk.txt $(VMDIR)/vm.txt
	@echo "vm-smoke: VM output byte-identical to tree-walker ✓"

# End-to-end observability check: run Figure 2 under PositDebug with an
# event trace, DAG export and metrics dump, plus a traced mini campaign,
# then validate the JSONL schema and DOT syntax with obscheck. CI runs
# this as the trace-smoke job and uploads the artifacts.
TRACEDIR ?= /tmp/pd-trace-smoke
trace-smoke: build
	mkdir -p $(TRACEDIR)
	$(GO) run ./cmd/pd -trace $(TRACEDIR)/trace.jsonl -dot $(TRACEDIR)/dag.dot -metrics $(TRACEDIR)/metrics.prom testdata/rootcount.pcl
	$(GO) run ./cmd/pdfault -workload polybench/gemm -seed 7 -runs 20 -trace $(TRACEDIR)/campaign.jsonl > /dev/null
	$(GO) run ./cmd/obscheck -jsonl $(TRACEDIR)/trace.jsonl,$(TRACEDIR)/campaign.jsonl -dot $(TRACEDIR)/dag.dot
	grep -q '^pd_detections_total' $(TRACEDIR)/metrics.prom
	@echo "trace-smoke: schema-valid trace, parsable DAG, metrics present ✓"

# A ~30-second mini resilience campaign: posit vs float under single bit
# flips, verified deterministic by running it twice and diffing the JSON.
# End-to-end profiler check: the parallel-determinism test under the race
# detector at -cpu=1,4 (profiles and Chrome traces must be byte-identical
# sequential vs 4 workers), then a real pdprof record whose profile is
# diffed against a -workers 4 re-record and whose Chrome trace obscheck
# validates for Perfetto-loadability. CI runs this as the profile-smoke job.
PROFDIR ?= /tmp/pd-profile-smoke
profile-smoke: build
	$(GO) test -race -count=1 -cpu=1,4 -run TestProfileParallelDeterminism ./internal/harness/
	mkdir -p $(PROFDIR)
	$(GO) run ./cmd/pdprof record -kernel gemm -n 8 -runs 8 -sample 16 -trace $(PROFDIR)/trace.json -o $(PROFDIR)/seq.pdprof
	$(GO) run ./cmd/pdprof record -kernel gemm -n 8 -runs 8 -sample 16 -workers 4 -o $(PROFDIR)/par.pdprof
	diff $(PROFDIR)/seq.pdprof $(PROFDIR)/par.pdprof
	$(GO) run ./cmd/obscheck -chrome $(PROFDIR)/trace.json
	$(GO) run ./cmd/pdprof top -n 5 $(PROFDIR)/seq.pdprof
	@echo "profile-smoke: deterministic profile, valid Chrome trace ✓"

campaign-smoke: build
	$(GO) run ./cmd/pdfault -workload polybench/gemm -seed 42 -model bitflip -runs 200 -arch both
	$(GO) run ./cmd/pdfault -workload polybench/gemm -seed 42 -model bitflip -runs 200 -arch both -json > /tmp/pdfault-smoke-1.json
	$(GO) run ./cmd/pdfault -workload polybench/gemm -seed 42 -model bitflip -runs 200 -arch both -json > /tmp/pdfault-smoke-2.json
	diff /tmp/pdfault-smoke-1.json /tmp/pdfault-smoke-2.json
	@echo "campaign-smoke: deterministic ✓"

# Distributed-fabric end-to-end check: the worker-loss and coordinator-
# resume tests under the race detector at -cpu=1,4 (a 3-worker campaign
# with one worker destroyed mid-flight, and a killed/restarted
# coordinator, must both produce bytes identical to a sequential run),
# then a real 2-process pdserve fleet driven by pdcoord, diffed against
# pdfault on the same flags. CI runs this as the fabric-smoke job.
FABDIR ?= /tmp/pd-fabric-smoke
fabric-smoke: build
	$(GO) test -race -count=1 -cpu=1,4 -run 'TestFabricWorkerLossByteIdentical|TestFabricCoordinatorResume' ./internal/fabric/
	mkdir -p $(FABDIR)
	$(GO) build -o $(FABDIR)/pdserve ./cmd/pdserve
	$(FABDIR)/pdserve -addr 127.0.0.1:8711 & echo $$! > $(FABDIR)/w1.pid
	$(FABDIR)/pdserve -addr 127.0.0.1:8712 & echo $$! > $(FABDIR)/w2.pid
	sleep 1
	$(GO) run ./cmd/pdcoord -workers http://127.0.0.1:8711,http://127.0.0.1:8712 \
		-workload polybench/gemm -seed 42 -runs 60 -arch both -shard-size 8 -json > $(FABDIR)/coord.json; \
		status=$$?; kill `cat $(FABDIR)/w1.pid` `cat $(FABDIR)/w2.pid` 2>/dev/null; exit $$status
	$(GO) run ./cmd/pdfault -workload polybench/gemm -seed 42 -runs 60 -arch both -json > $(FABDIR)/seq.json
	diff $(FABDIR)/coord.json $(FABDIR)/seq.json
	@echo "fabric-smoke: distributed report byte-identical to sequential ✓"

# Self-healing fleet check. First the chaos suite under the race detector
# at -cpu=1,4: real campaigns through the fault-injecting proxy (latency,
# error storms, connection resets, truncated bodies, blackholes) with one
# worker killed and another joining mid-run, every merged report required
# byte-identical to sequential pdfault. Then a real 2-process fleet
# assembled by discovery alone: two pdserve workers self-register with a
# pdcoord registration endpoint (no -workers flag anywhere), the campaign
# runs, and the result is diffed against pdfault. Workers start before
# the coordinator on purpose — the registration loop must survive beats
# into the void until the endpoint appears. CI runs this as the
# chaos-smoke job.
CHAOSDIR ?= /tmp/pd-chaos-smoke
chaos-smoke: build
	$(GO) test -race -count=1 -cpu=1,4 ./internal/chaos/
	mkdir -p $(CHAOSDIR)
	$(GO) build -o $(CHAOSDIR)/pdserve ./cmd/pdserve
	$(CHAOSDIR)/pdserve -addr 127.0.0.1:8713 -coordinator http://127.0.0.1:8731 -heartbeat 250ms & echo $$! > $(CHAOSDIR)/w1.pid
	$(CHAOSDIR)/pdserve -addr 127.0.0.1:8714 -coordinator http://127.0.0.1:8731 -heartbeat 250ms & echo $$! > $(CHAOSDIR)/w2.pid
	$(GO) run ./cmd/pdcoord -listen 127.0.0.1:8731 -min-workers 2 \
		-workload polybench/gemm -seed 42 -runs 60 -arch both -shard-size 8 -json > $(CHAOSDIR)/coord.json; \
		status=$$?; kill `cat $(CHAOSDIR)/w1.pid` `cat $(CHAOSDIR)/w2.pid` 2>/dev/null; exit $$status
	$(GO) run ./cmd/pdfault -workload polybench/gemm -seed 42 -runs 60 -arch both -json > $(CHAOSDIR)/seq.json
	diff $(CHAOSDIR)/coord.json $(CHAOSDIR)/seq.json
	@echo "chaos-smoke: self-registered fleet byte-identical to sequential ✓"

# Fleet observability end-to-end. First the in-process acceptance tests
# under the race detector: the chaos fleet-trace-through-storm test at
# -cpu=1,4 plus the fabric trace/status/SSE suite. Then a real 2-process
# fleet: two pdserve workers (flight recorders on by default) self-
# register with pdcoord -listen, the campaign runs with -trace, GET
# /fleet/status is polled over HTTP while shards are in flight, and the
# tracing overhead row is gated by pdbench -fabric -strict (<5%). The
# merged multi-process Chrome trace must validate via obscheck, span the
# coordinator and worker request spans, and the report must still diff
# clean against pdfault. CI runs this as the fleet-obs-smoke job.
FLEETDIR ?= /tmp/pd-fleet-obs-smoke
fleet-obs-smoke: build
	$(GO) test -race -count=1 -cpu=1,4 -run TestChaosFleetTraceThroughStorm ./internal/chaos/
	$(GO) test -race -count=1 -run 'TestFleetTraceEndToEnd|TestFleetStatusShape|TestFleetEventsSSE|TestWeightedRing' ./internal/fabric/
	mkdir -p $(FLEETDIR)
	$(GO) build -o $(FLEETDIR)/pdserve ./cmd/pdserve
	$(FLEETDIR)/pdserve -addr 127.0.0.1:8715 -coordinator http://127.0.0.1:8732 -heartbeat 250ms & echo $$! > $(FLEETDIR)/w1.pid
	$(FLEETDIR)/pdserve -addr 127.0.0.1:8716 -coordinator http://127.0.0.1:8732 -heartbeat 250ms & echo $$! > $(FLEETDIR)/w2.pid
	( for i in `seq 1 100`; do \
		if curl -sf http://127.0.0.1:8732/fleet/status > $(FLEETDIR)/status.json.tmp 2>/dev/null \
			|| wget -qO $(FLEETDIR)/status.json.tmp http://127.0.0.1:8732/fleet/status 2>/dev/null; then \
			mv $(FLEETDIR)/status.json.tmp $(FLEETDIR)/status.json; fi; \
		sleep 0.2; done ) & echo $$! > $(FLEETDIR)/poll.pid
	$(GO) run ./cmd/pdcoord -listen 127.0.0.1:8732 -min-workers 2 \
		-workload polybench/gemm -seed 42 -runs 60 -arch both -shard-size 8 \
		-trace $(FLEETDIR)/fleet-trace.json -json > $(FLEETDIR)/coord.json; \
		status=$$?; kill `cat $(FLEETDIR)/w1.pid` `cat $(FLEETDIR)/w2.pid` `cat $(FLEETDIR)/poll.pid` 2>/dev/null; exit $$status
	$(GO) run ./cmd/pdfault -workload polybench/gemm -seed 42 -runs 60 -arch both -json > $(FLEETDIR)/seq.json
	diff $(FLEETDIR)/coord.json $(FLEETDIR)/seq.json
	$(GO) run ./cmd/obscheck -chrome $(FLEETDIR)/fleet-trace.json
	grep -q '"request"' $(FLEETDIR)/fleet-trace.json
	grep -q '"pdcoord"' $(FLEETDIR)/fleet-trace.json
	test -s $(FLEETDIR)/status.json
	grep -q '"total_shards"' $(FLEETDIR)/status.json
	grep -q '"workers"' $(FLEETDIR)/status.json
	$(GO) run ./cmd/pdbench -fabric -strict -fabric-runs 240 -fabric-shard-size 16 -out $(FLEETDIR)/BENCH_fabric.json
	@echo "fleet-obs-smoke: merged fleet trace valid, live status served, tracing overhead inside budget ✓"
