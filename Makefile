GO ?= go

.PHONY: all build vet test race fuzz fuzz-frontend campaign-smoke bench-json bench-serve bench-profile trace-smoke profile-smoke

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./internal/faultinject/ ./internal/interp/ ./internal/parallel/ ./internal/server/
	$(GO) test -race -count=1 -cpu=1,4 -run ParallelDeterminism ./internal/faultinject/ ./internal/harness/

# Regenerate the checked-in benchmark report (BENCH_shadow.json). CI runs
# the same tool with -short as a smoke check and uploads the artifact.
bench-json: build
	$(GO) run ./cmd/pdbench -out BENCH_shadow.json

# Regenerate the checked-in serve-path report (BENCH_serve.json):
# requests/sec and p50/p99 latency through the full HTTP service.
bench-serve: build
	$(GO) run ./cmd/pdbench -serve -out BENCH_serve.json

# Regenerate the checked-in profiler-overhead report (BENCH_profile.json):
# full-shadow vs sampled-shadow cost and checked-op fraction on gemm.
bench-profile: build
	$(GO) run ./cmd/pdbench -profile -out BENCH_profile.json

fuzz:
	$(GO) test . -run FuzzInjector -fuzz FuzzInjector -fuzztime 30s

# The service compiles untrusted request bodies: the parser and type
# checker must error, never panic, on arbitrary input. CI runs this as
# the fuzz-smoke job.
fuzz-frontend:
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime 30s ./internal/lang/
	$(GO) test -run xxx -fuzz FuzzTypeCheck -fuzztime 30s ./internal/lang/

# End-to-end observability check: run Figure 2 under PositDebug with an
# event trace, DAG export and metrics dump, plus a traced mini campaign,
# then validate the JSONL schema and DOT syntax with obscheck. CI runs
# this as the trace-smoke job and uploads the artifacts.
TRACEDIR ?= /tmp/pd-trace-smoke
trace-smoke: build
	mkdir -p $(TRACEDIR)
	$(GO) run ./cmd/pd -trace $(TRACEDIR)/trace.jsonl -dot $(TRACEDIR)/dag.dot -metrics $(TRACEDIR)/metrics.prom testdata/rootcount.pcl
	$(GO) run ./cmd/pdfault -workload polybench/gemm -seed 7 -runs 20 -trace $(TRACEDIR)/campaign.jsonl > /dev/null
	$(GO) run ./cmd/obscheck -jsonl $(TRACEDIR)/trace.jsonl,$(TRACEDIR)/campaign.jsonl -dot $(TRACEDIR)/dag.dot
	grep -q '^pd_detections_total' $(TRACEDIR)/metrics.prom
	@echo "trace-smoke: schema-valid trace, parsable DAG, metrics present ✓"

# A ~30-second mini resilience campaign: posit vs float under single bit
# flips, verified deterministic by running it twice and diffing the JSON.
# End-to-end profiler check: the parallel-determinism test under the race
# detector at -cpu=1,4 (profiles and Chrome traces must be byte-identical
# sequential vs 4 workers), then a real pdprof record whose profile is
# diffed against a -workers 4 re-record and whose Chrome trace obscheck
# validates for Perfetto-loadability. CI runs this as the profile-smoke job.
PROFDIR ?= /tmp/pd-profile-smoke
profile-smoke: build
	$(GO) test -race -count=1 -cpu=1,4 -run TestProfileParallelDeterminism ./internal/harness/
	mkdir -p $(PROFDIR)
	$(GO) run ./cmd/pdprof record -kernel gemm -n 8 -runs 8 -sample 16 -trace $(PROFDIR)/trace.json -o $(PROFDIR)/seq.pdprof
	$(GO) run ./cmd/pdprof record -kernel gemm -n 8 -runs 8 -sample 16 -workers 4 -o $(PROFDIR)/par.pdprof
	diff $(PROFDIR)/seq.pdprof $(PROFDIR)/par.pdprof
	$(GO) run ./cmd/obscheck -chrome $(PROFDIR)/trace.json
	$(GO) run ./cmd/pdprof top -n 5 $(PROFDIR)/seq.pdprof
	@echo "profile-smoke: deterministic profile, valid Chrome trace ✓"

campaign-smoke: build
	$(GO) run ./cmd/pdfault -workload polybench/gemm -seed 42 -model bitflip -runs 200 -arch both
	$(GO) run ./cmd/pdfault -workload polybench/gemm -seed 42 -model bitflip -runs 200 -arch both -json > /tmp/pdfault-smoke-1.json
	$(GO) run ./cmd/pdfault -workload polybench/gemm -seed 42 -model bitflip -runs 200 -arch both -json > /tmp/pdfault-smoke-2.json
	diff /tmp/pdfault-smoke-1.json /tmp/pdfault-smoke-2.json
	@echo "campaign-smoke: deterministic ✓"
