package positdebug_test

import (
	"reflect"
	"testing"

	positdebug "positdebug"
	"positdebug/internal/backend"
	"positdebug/internal/harness"
	"positdebug/internal/shadow"
	"positdebug/internal/shadow/oracle"
)

// TestOracleDiffDetectionSuite runs the full §5.1 detection suite under
// every shadow oracle on both execution backends and diffs the verdicts
// against the bigfp-256 reference, in the style of the backend
// differential suite.
//
// The dd oracle's contract: every program bigfp flags, dd flags — zero
// flagged/clean disagreements — and on all but the precision-escaping
// programs the full row (detected-kind set, output/op error bits, branch
// flips, DAG size) is bitwise identical. The one escape in the suite is
// fp_muller: Muller's recurrence amplifies the shadow's own rounding
// error by ~2^4.3 per iteration, so over 40 iterations a 106-bit shadow
// is dragged to the same wrong attractor as the program (its wrong-output
// magnitude shrinks) while 256-bit bigfp still tracks the true orbit. dd
// still flags the program — via the cancellation and high-error detectors
// that fire long before the collapse — which is why the watchdog may
// degrade onto dd without losing detection coverage, and why bigfp
// remains the default reference.
//
// The residue oracle carries only 53 bits, so its error measurements may
// legitimately skew on programs whose shadow value itself needs more than
// a double; its contract is bounded skew of the binary flagged/clean
// verdict, not bitwise agreement.
func TestOracleDiffDetectionSuite(t *testing.T) {
	for _, bk := range []backend.Kind{backend.Treewalk, backend.VM} {
		bk := bk
		t.Run(bk.String(), func(t *testing.T) {
			t.Parallel()
			ref, err := harness.RunDetectionOracle(bk, oracle.BigFP, nil, nil)
			if err != nil {
				t.Fatalf("bigfp suite: %v", err)
			}

			dd, err := harness.RunDetectionOracle(bk, oracle.DD, nil, nil)
			if err != nil {
				t.Fatalf("dd suite: %v", err)
			}
			if len(dd.Rows) != len(ref.Rows) {
				t.Fatalf("dd suite ran %d programs, bigfp %d", len(dd.Rows), len(ref.Rows))
			}
			// ddEscapes lists the programs whose true orbit needs more
			// than dd's 106 bits (see the doc comment above); their rows
			// get the verdict-level check only.
			ddEscapes := map[string]bool{"fp_muller": true}
			for i, want := range ref.Rows {
				got := dd.Rows[i]
				if (len(got.Detected) > 0) != (len(want.Detected) > 0) {
					t.Errorf("dd flips the flagged/clean verdict on %s: bigfp %v, dd %v",
						want.Name, want.Detected, got.Detected)
				}
				if ddEscapes[want.Name] {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("dd disagrees with bigfp on %s:\n  bigfp: %+v\n  dd:    %+v",
						want.Name, want, got)
				}
			}

			res, err := harness.RunDetectionOracle(bk, oracle.Residue, nil, nil)
			if err != nil {
				t.Fatalf("residue suite: %v", err)
			}
			skew := 0
			for i, want := range ref.Rows {
				got := res.Rows[i]
				if (len(got.Detected) > 0) != (len(want.Detected) > 0) {
					skew++
					t.Logf("residue verdict skew on %s: bigfp detected %v, residue %v",
						want.Name, want.Detected, got.Detected)
				}
			}
			if skew > 2 {
				t.Errorf("residue flips the flagged/clean verdict on %d programs, tolerance 2", skew)
			}
		})
	}
}

// TestOracleDiffExecResult checks the per-run surface the library hands
// back: for a representative detecting program, Exec under each oracle
// must report the oracle it actually ran (ShadowOracle), its nominal
// precision, and — for dd — the same summary counts as bigfp.
func TestOracleDiffExecResult(t *testing.T) {
	src := `
func main(): p32 {
	var big: p32 = 16777216.0;
	var one: p32 = 1.0;
	return (big + one) - big;
}
`
	prog, err := positdebug.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	type outcome struct {
		kind   oracle.Kind
		cancel int
	}
	var got []outcome
	for _, kind := range oracle.Kinds() {
		res, err := prog.Exec("main", positdebug.WithShadowOracle(kind))
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if res.ShadowOracle != kind {
			t.Errorf("%s: Result.ShadowOracle = %q", kind, res.ShadowOracle)
		}
		if want := oracle.NominalPrecision(kind, 0); res.ShadowPrecision != want {
			t.Errorf("%s: Result.ShadowPrecision = %d, want %d", kind, res.ShadowPrecision, want)
		}
		got = append(got, outcome{kind, res.Summary.Counts[shadow.KindCancellation]})
	}
	for _, o := range got[1:] {
		if o.cancel != got[0].cancel {
			t.Errorf("%s counts %d cancellations, bigfp %d", o.kind, o.cancel, got[0].cancel)
		}
	}
}
