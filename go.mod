module positdebug

go 1.22
