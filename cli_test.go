package positdebug_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLITools builds the command-line tools and exercises each on the
// paper's Figure 2 program — an end-to-end check of the shipped binaries.
func TestCLITools(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping binary builds")
	}
	bin := t.TempDir()
	for _, tool := range []string{"pd", "fpsan", "positrefactor", "pdexp", "positinfo"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(bin, tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
	}
	dir := t.TempDir()
	fig2 := filepath.Join(dir, "fig2.pcl")
	writeFile(t, fig2, `
func rootcount(a: p32, b: p32, c: p32): i64 {
	var t1: p32 = b * b;
	var t2: p32 = 4.0 * a * c;
	var t3: p32 = t1 - t2;
	if (t3 > 0.0) { return 2; }
	if (t3 == 0.0) { return 1; }
	return 0;
}
func main(): i64 {
	var r: i64 = rootcount(18309067625725952.0, 3246642954240.0, 143923904.0);
	print(r);
	return r;
}
`)
	fpsrc := filepath.Join(dir, "absorb.pcl")
	writeFile(t, fpsrc, `
func main(): f32 {
	var s: f32 = 16777216.0;
	s = s + 1.0;
	var d: f32 = s - 16777216.0;
	print(d);
	return d;
}
`)

	run := func(name string, args ...string) string {
		t.Helper()
		out, err := exec.Command(filepath.Join(bin, name), args...).CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	// pd: detection + DAG on the posit program.
	out := run("pd", fig2)
	for _, frag := range []string{"catastrophic-cancellation", "branch-flip", "t1 - t2", "bits of error"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("pd output missing %q:\n%s", frag, out)
		}
	}
	// pd -baseline: plain program output only.
	out = run("pd", "-baseline", fig2)
	if strings.TrimSpace(out) != "1" {
		t.Fatalf("pd -baseline: %q", out)
	}
	// pd respects the environment thresholds.
	cmd := exec.Command(filepath.Join(bin, "pd"), fig2)
	cmd.Env = append(os.Environ(), "PD_REPORT_LIMIT=1")
	limited, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("pd with env: %v", err)
	}
	if strings.Count(string(limited), "bits of error)") > 2 {
		t.Fatalf("PD_REPORT_LIMIT ignored:\n%s", limited)
	}

	// fpsan on the FP program.
	out = run("fpsan", fpsrc)
	if !strings.Contains(out, "cancellation") && !strings.Contains(out, "wrong-output") {
		t.Fatalf("fpsan missed the absorption bug:\n%s", out)
	}
	// fpsan -herbgrind.
	out = run("fpsan", "-herbgrind", fpsrc)
	if !strings.Contains(out, "trace nodes") {
		t.Fatalf("fpsan -herbgrind:\n%s", out)
	}

	// positrefactor converts the FP source to posits.
	out = run("positrefactor", fpsrc)
	if !strings.Contains(out, "p32") || strings.Contains(out, "f32") {
		t.Fatalf("positrefactor output:\n%s", out)
	}

	// positinfo decodes the paper's ⟨8,1⟩ example.
	out = run("positinfo", "-n", "8", "-es", "1", "-bits", "01101101")
	if !strings.Contains(out, "value: 13") || !strings.Contains(out, "0|110|1|101") {
		t.Fatalf("positinfo:\n%s", out)
	}

	// pdexp runs a single fast experiment.
	out = run("pdexp", "-exp", "rootcount", "-quick")
	if !strings.Contains(out, "exact arithmetic gives 2") {
		t.Fatalf("pdexp rootcount:\n%s", out)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
