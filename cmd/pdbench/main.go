// Command pdbench runs the repository's performance benchmark suite via
// testing.Benchmark and emits a machine-readable JSON report — the artifact
// behind `make bench-json` (checked in as BENCH_shadow.json) and the CI
// bench-smoke job.
//
// Usage:
//
//	pdbench                      # full suite to stdout
//	pdbench -out BENCH.json      # write the report to a file
//	pdbench -short               # codec + warm-runtime benches only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	positdebug "positdebug"
	"positdebug/internal/faultinject"
	"positdebug/internal/harness"
	"positdebug/internal/interp"
	"positdebug/internal/posit"
	"positdebug/internal/shadow"
	"positdebug/internal/workloads"
)

// Bench is one benchmark's measurement.
type Bench struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the file format of BENCH_shadow.json.
type Report struct {
	Go         string  `json:"go"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Short      bool    `json:"short"`
	Benchmarks []Bench `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	short := flag.Bool("short", false, "codec and warm-runtime benches only (CI smoke)")
	flag.Parse()

	rep := &Report{
		Go: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0), Short: *short,
	}
	add := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		rep.Benchmarks = append(rep.Benchmarks, Bench{
			Name: name, Iterations: r.N, NsPerOp: float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-28s %12d iters %14.2f ns/op %8d B/op %6d allocs/op\n",
			name, r.N, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	codecBenches(add)
	shadowBenches(add)
	if !*short {
		sweepBenches(add)
	}

	j, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	j = append(j, '\n')
	if *out == "" {
		os.Stdout.Write(j)
		return
	}
	if err := os.WriteFile(*out, j, 0o644); err != nil {
		fatal(err)
	}
}

// codecBenches: raw posit arithmetic, fast paths vs the generic pipeline
// (mirrors BenchmarkAblationPositFast).
func codecBenches(add func(string, func(b *testing.B))) {
	x32, y32 := posit.Config32.FromFloat64(1.375), posit.Config32.FromFloat64(0.8125)
	x16, y16 := posit.Config16.FromFloat64(1.375), posit.Config16.FromFloat64(0.8125)
	x8, y8 := posit.Config8.FromFloat64(1.375), posit.Config8.FromFloat64(0.8125)
	add("posit/p16-add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = posit.Config16.Add(x16, y16)
		}
	})
	add("posit/p16-mul", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = posit.Config16.Mul(x16, y16)
		}
	})
	add("posit/p16-add-generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = posit.Config16.GenericAdd(x16, y16)
		}
	})
	add("posit/p16-mul-generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = posit.Config16.GenericMul(x16, y16)
		}
	})
	add("posit/p8-add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = posit.Config8.Add(x8, y8)
		}
	})
	add("posit/p32-add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = posit.Config32.Add(x32, y32)
		}
	})
	add("posit/p32-mul", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = posit.Config32.Mul(x32, y32)
		}
	})
	add("posit/p32-decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = posit.Config32.Decode(x32)
		}
	})
}

// shadowBenches: shadow execution of a small posit kernel, cold (fresh
// runtime + machine per run, the pre-PR shape) vs warm (one reusable
// Debugger, the campaign-worker shape).
func shadowBenches(add func(string, func(b *testing.B))) {
	k, ok := workloads.KernelByName("gemm")
	if !ok {
		fatal(fmt.Errorf("no gemm kernel"))
	}
	psrc, err := positdebug.RefactorToPosit(k.Source(8))
	if err != nil {
		fatal(err)
	}
	prog, err := positdebug.Compile(psrc)
	if err != nil {
		fatal(err)
	}
	cfg := shadow.DefaultConfig()
	cfg.Tracing = false
	cfg.MaxReports = 1
	add("shadow/gemm8-cold-run", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := prog.Debug(cfg, "main"); err != nil {
				b.Fatal(err)
			}
		}
	})
	dbg, err := prog.NewDebugger(cfg)
	if err != nil {
		fatal(err)
	}
	add("shadow/gemm8-warm-run", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dbg.DebugWithLimits(interp.Limits{}, nil, "main"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// sweepBenches: end-to-end figure-scale work — the §5.1 detection suite and
// a 20-run fault-injection campaign, both sharded by internal/parallel.
func sweepBenches(add func(string, func(b *testing.B))) {
	add("harness/detect-suite", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := harness.RunDetection(); err != nil {
				b.Fatal(err)
			}
		}
	})
	ccfg := faultinject.CampaignConfig{
		Workload: "polybench/gemm", N: 8, Runs: 20, Seed: 42,
	}
	add("campaign/gemm8-20runs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := faultinject.RunCampaign(ccfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdbench:", err)
	os.Exit(1)
}
