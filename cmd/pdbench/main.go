// Command pdbench runs the repository's performance benchmark suite via
// testing.Benchmark and emits a machine-readable JSON report — the artifact
// behind `make bench-json` (checked in as BENCH_shadow.json) and the CI
// bench-smoke job.
//
// Usage:
//
//	pdbench                      # full suite to stdout
//	pdbench -out BENCH.json      # write the report to a file
//	pdbench -short               # codec + warm-runtime benches only
//	pdbench -strict              # exit nonzero on a >10% ns/op regression
//	pdbench -oracle bigfp,dd,residue       # per-oracle speed/precision frontier rows
//	pdbench -serve -out BENCH_serve.json   # HTTP serve-path throughput/latency
//
// Unless -baseline "" disables it, the run is compared against the
// checked-in BENCH_shadow.json: per-benchmark ns/op deltas go to stderr,
// regressions beyond 10% are flagged, and -strict turns them into a
// nonzero exit for CI.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/big"
	"os"
	"runtime"
	"strings"
	"testing"

	positdebug "positdebug"
	"positdebug/internal/backend"
	"positdebug/internal/faultinject"
	"positdebug/internal/harness"
	"positdebug/internal/posit"
	"positdebug/internal/shadow"
	"positdebug/internal/shadow/oracle"
	"positdebug/internal/workloads"
)

// Bench is one benchmark's measurement.
type Bench struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the file format of BENCH_shadow.json.
type Report struct {
	Go         string  `json:"go"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Short      bool    `json:"short"`
	Benchmarks []Bench `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	short := flag.Bool("short", false, "codec and warm-runtime benches only (CI smoke)")
	baseline := flag.String("baseline", "BENCH_shadow.json", "baseline report to diff against (\"\" disables)")
	strict := flag.Bool("strict", false, "exit nonzero if any benchmark regresses more than 10% vs the baseline")
	serve := flag.Bool("serve", false, "benchmark the HTTP serve path instead (requests/sec + latency percentiles)")
	serveReqs := flag.Int("serve-requests", 400, "requests per serve-path scenario")
	profileMode := flag.Bool("profile", false, "benchmark the numerical-error profiler instead: full-shadow vs sampled-shadow overhead (BENCH_profile.json)")
	profileKernel := flag.String("profile-kernel", "gemm", "kernel for -profile")
	profileN := flag.Int("profile-n", 8, "problem size for -profile")
	fabricMode := flag.Bool("fabric", false, "benchmark the distributed campaign fabric instead: 1- vs 3-worker throughput and merge latency (BENCH_fabric.json)")
	fabricRuns := flag.Int("fabric-runs", 48, "campaign runs for -fabric")
	fabricShard := flag.Int("fabric-shard-size", 8, "shard size for -fabric")
	backendsFlag := flag.String("backend", "treewalk,vm", "comma-separated execution backends for the shadow and sweep benches; the first keeps the canonical bench name, the rest get an @backend suffix")
	oraclesFlag := flag.String("oracle", "bigfp", "comma-separated shadow oracles (bigfp|dd|residue) for the shadow benches; the first keeps the canonical bench name, the rest get an @oracle suffix")
	flag.Parse()

	if *serve {
		if err := serveBench(*out, *serveReqs); err != nil {
			fatal(err)
		}
		return
	}
	if *profileMode {
		if err := profileBench(*out, *profileKernel, *profileN); err != nil {
			fatal(err)
		}
		return
	}
	if *fabricMode {
		if err := fabricBench(*out, "polybench/"+*profileKernel, *profileN, *fabricRuns, *fabricShard, *strict); err != nil {
			fatal(err)
		}
		return
	}

	kinds, err := parseBackends(*backendsFlag)
	if err != nil {
		fatal(err)
	}
	orcs, err := parseOracles(*oraclesFlag)
	if err != nil {
		fatal(err)
	}

	rep := &Report{
		Go: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0), Short: *short,
	}
	add := func(name string, fn func(b *testing.B)) {
		r := testing.Benchmark(fn)
		rep.Benchmarks = append(rep.Benchmarks, Bench{
			Name: name, Iterations: r.N, NsPerOp: float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp: r.AllocedBytesPerOp(), AllocsPerOp: r.AllocsPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-28s %12d iters %14.2f ns/op %8d B/op %6d allocs/op\n",
			name, r.N, float64(r.T.Nanoseconds())/float64(r.N), r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	codecBenches(add)
	for i, k := range kinds {
		// The first backend keeps the canonical bench names so reports stay
		// diffable against old baselines; the rest are recorded side by side
		// under name@backend for the comparison below.
		suffix := ""
		if i > 0 {
			suffix = "@" + k.String()
		}
		shadowBenches(add, k, benchShadowConfig(orcs[0]), suffix)
		if !*short {
			sweepBenches(add, k, suffix)
		}
	}
	// Non-canonical oracles get their own shadow rows on the canonical
	// backend — the per-oracle speed/precision frontier recorded in
	// BENCH_shadow.json (shadow/gemm8-warm-run@dd and friends).
	if len(orcs) > 1 {
		oracleArithBenches(add, orcs[0], "")
	}
	for _, orc := range orcs[1:] {
		oracleArithBenches(add, orc, "@"+string(orc))
		shadowBenches(add, kinds[0], benchShadowConfig(orc), "@"+string(orc))
	}

	j, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	j = append(j, '\n')
	if *out == "" {
		os.Stdout.Write(j)
	} else if err := os.WriteFile(*out, j, 0o644); err != nil {
		fatal(err)
	}

	regressed := false
	if *baseline != "" {
		regressed = compareBaseline(*baseline, rep)
	}
	if compareBackends(rep) {
		regressed = true
	}
	if compareOracles(rep, orcs[0]) {
		regressed = true
	}
	if regressed && *strict {
		fatal(fmt.Errorf("benchmarks regressed more than %d%% (vs baseline %s or VM vs treewalk)", regressPct, *baseline))
	}
}

// parseBackends maps the -backend flag ("treewalk,vm") to backend kinds,
// rejecting duplicates so each bench name stays unique in the report.
func parseBackends(list string) ([]backend.Kind, error) {
	var kinds []backend.Kind
	seen := map[backend.Kind]bool{}
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := backend.Parse(part)
		if err != nil {
			return nil, err
		}
		if seen[k] {
			return nil, fmt.Errorf("backend %v listed twice", k)
		}
		seen[k] = true
		kinds = append(kinds, k)
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("-backend lists no backends")
	}
	return kinds, nil
}

// parseOracles maps the -oracle flag ("bigfp,dd,residue") to oracle kinds,
// rejecting duplicates so each bench name stays unique in the report.
func parseOracles(list string) ([]oracle.Kind, error) {
	var kinds []oracle.Kind
	seen := map[oracle.Kind]bool{}
	for _, part := range strings.Split(list, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := oracle.Parse(part)
		if err != nil {
			return nil, err
		}
		if seen[k] {
			return nil, fmt.Errorf("oracle %s listed twice", k)
		}
		seen[k] = true
		kinds = append(kinds, k)
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("-oracle lists no oracles")
	}
	return kinds, nil
}

// benchShadowConfig is the shadow configuration the shadow benches run
// under: the given oracle at its default precision (256 bits for bigfp),
// tracing off and reporting capped, so the rows measure shadow arithmetic
// rather than report construction.
func benchShadowConfig(orc oracle.Kind) shadow.Config {
	cfg := shadow.ConfigFor(orc, 0)
	cfg.Tracing = false
	cfg.MaxReports = 1
	return cfg
}

// oracleArithBenches isolates the cost the oracle choice actually
// controls: one shadowed multiply-accumulate (the gemm inner-loop op) plus
// the ULP error check, with every interpreter and metadata cost stripped
// away. These are the speed axis of the speed/precision frontier; the
// dd-vs-bigfp 2x gate in compareOracles reads them.
func oracleArithBenches(add func(string, func(b *testing.B)), orc oracle.Kind, suffix string) {
	o, err := oracle.New(orc, 0)
	if err != nil {
		fatal(err)
	}
	add("oracle/muladd-ulps"+suffix, func(b *testing.B) {
		var acc, x, y, prod oracle.Value
		var scratch big.Float
		o.SetFloat64(&acc, 0)
		o.SetFloat64(&x, 1.375)
		o.SetFloat64(&y, 0.8125)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o.Mul(&prod, &x, &y)
			o.Add(&acc, &acc, &prod)
			_ = o.Ulps(1.1171875, &prod, &scratch)
		}
	})
}

// compareBackends diffs each benchmark recorded under a non-canonical
// backend (name@vm) against its canonical twin from the same report and
// flags the pair when the alternate backend is slower beyond regressPct —
// the guard that keeps the fused-superinstruction VM from quietly losing
// its advantage over the tree-walker.
func compareBackends(rep *Report) bool {
	byName := make(map[string]Bench, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		byName[b.Name] = b
	}
	regressed := false
	header := false
	for _, b := range rep.Benchmarks {
		at := strings.LastIndex(b.Name, "@")
		if at < 0 {
			continue
		}
		if _, err := oracle.Parse(b.Name[at+1:]); err == nil {
			continue // oracle rows are diffed by compareOracles
		}
		base, ok := byName[b.Name[:at]]
		if !ok || base.NsPerOp == 0 {
			continue
		}
		if !header {
			fmt.Fprintln(os.Stderr, "\nbackend comparison:")
			header = true
		}
		delta := 100 * (b.NsPerOp - base.NsPerOp) / base.NsPerOp
		mark := ""
		if delta > regressPct {
			mark = fmt.Sprintf("  ** %s slower than %s by > %d%% **", b.Name[at+1:], b.Name[:at], regressPct)
			regressed = true
		}
		fmt.Fprintf(os.Stderr, "  %-28s %14.2f ns/op  %+7.1f%% vs %s%s\n",
			b.Name, b.NsPerOp, delta, b.Name[:at], mark)
	}
	return regressed
}

// compareOracles diffs each benchmark recorded under a non-canonical
// shadow oracle (name@dd, name@residue) against its canonical twin — the
// speed/precision frontier. When the canonical oracle is bigfp the
// comparison is also a gate: the double-double oracle exists to be cheap,
// so the warm-run row must stay at least 2x faster than bigfp-256, and any
// oracle row slower than bigfp beyond regressPct counts as a regression.
func compareOracles(rep *Report, canonical oracle.Kind) bool {
	byName := make(map[string]Bench, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		byName[b.Name] = b
	}
	regressed := false
	header := false
	for _, b := range rep.Benchmarks {
		at := strings.LastIndex(b.Name, "@")
		if at < 0 {
			continue
		}
		kind, err := oracle.Parse(b.Name[at+1:])
		if err != nil {
			continue // backend rows belong to compareBackends
		}
		base, ok := byName[b.Name[:at]]
		if !ok || base.NsPerOp == 0 || b.NsPerOp == 0 {
			continue
		}
		if !header {
			fmt.Fprintf(os.Stderr, "\noracle comparison (canonical = %s):\n", canonical)
			header = true
		}
		speedup := base.NsPerOp / b.NsPerOp
		mark := ""
		switch {
		case canonical != oracle.BigFP:
			// Non-bigfp canonical rows have no speed contract to enforce.
		case kind == oracle.DD && strings.HasPrefix(b.Name, "oracle/") && speedup < 2:
			// The oracle choice controls the per-op shadow arithmetic, so
			// that is where dd's 2x-over-bigfp-256 contract is enforced; the
			// end-to-end gemm rows (interpreter dispatch + metadata
			// bookkeeping shared by every oracle) are gated below at
			// "not slower" like any other warm row.
			mark = "  ** dd arithmetic lost its 2x advantage over bigfp-256 **"
			regressed = true
		case strings.Contains(b.Name, "cold"):
			// Cold runs are dominated by identical-across-oracles allocation
			// work and too noisy to gate; the row is informational.
		case b.NsPerOp > base.NsPerOp*(1+regressPct/100.0):
			mark = fmt.Sprintf("  ** %s slower than bigfp by > %d%% **", kind, regressPct)
			regressed = true
		}
		fmt.Fprintf(os.Stderr, "  %-32s %14.2f ns/op  %6.2fx vs %s%s\n",
			b.Name, b.NsPerOp, speedup, b.Name[:at], mark)
	}
	return regressed
}

// regressPct is the ns/op slowdown beyond which a benchmark counts as a
// regression against the baseline report.
const regressPct = 10

// compareBaseline diffs the fresh report against the checked-in baseline
// and prints per-benchmark ns/op deltas to stderr. Returns whether any
// benchmark regressed beyond regressPct. A missing or unreadable baseline
// is a note, not an error: fresh checkouts and new machines produce one
// with `pdbench -out BENCH_shadow.json`.
func compareBaseline(path string, rep *Report) bool {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pdbench: no baseline %s (%v); skipping comparison\n", path, err)
		return false
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "pdbench: baseline %s unreadable (%v); skipping comparison\n", path, err)
		return false
	}
	byName := make(map[string]Bench, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		byName[b.Name] = b
	}
	fmt.Fprintf(os.Stderr, "\nvs baseline %s (go %s):\n", path, base.Go)
	regressed := false
	for _, b := range rep.Benchmarks {
		old, ok := byName[b.Name]
		if !ok || old.NsPerOp == 0 {
			fmt.Fprintf(os.Stderr, "  %-28s %14.2f ns/op  (new, no baseline entry)\n", b.Name, b.NsPerOp)
			continue
		}
		delta := 100 * (b.NsPerOp - old.NsPerOp) / old.NsPerOp
		mark := ""
		if delta > regressPct {
			mark = fmt.Sprintf("  ** regression > %d%% **", regressPct)
			regressed = true
		}
		fmt.Fprintf(os.Stderr, "  %-28s %14.2f ns/op  %+7.1f%%%s\n", b.Name, b.NsPerOp, delta, mark)
	}
	return regressed
}

// codecBenches: raw posit arithmetic, fast paths vs the generic pipeline
// (mirrors BenchmarkAblationPositFast).
func codecBenches(add func(string, func(b *testing.B))) {
	x32, y32 := posit.Config32.FromFloat64(1.375), posit.Config32.FromFloat64(0.8125)
	x16, y16 := posit.Config16.FromFloat64(1.375), posit.Config16.FromFloat64(0.8125)
	x8, y8 := posit.Config8.FromFloat64(1.375), posit.Config8.FromFloat64(0.8125)
	add("posit/p16-add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = posit.Config16.Add(x16, y16)
		}
	})
	add("posit/p16-mul", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = posit.Config16.Mul(x16, y16)
		}
	})
	add("posit/p16-add-generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = posit.Config16.GenericAdd(x16, y16)
		}
	})
	add("posit/p16-mul-generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = posit.Config16.GenericMul(x16, y16)
		}
	})
	add("posit/p8-add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = posit.Config8.Add(x8, y8)
		}
	})
	add("posit/p32-add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = posit.Config32.Add(x32, y32)
		}
	})
	add("posit/p32-mul", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = posit.Config32.Mul(x32, y32)
		}
	})
	add("posit/p32-decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = posit.Config32.Decode(x32)
		}
	})
}

// shadowBenches: shadow execution of a small posit kernel, cold (fresh
// runtime + machine per run, the pre-PR shape) vs warm (one reusable
// Debugger, the campaign-worker shape). cfg picks the shadow oracle the
// rows are measured under (see benchShadowConfig).
func shadowBenches(add func(string, func(b *testing.B)), bk backend.Kind, cfg shadow.Config, suffix string) {
	k, ok := workloads.KernelByName("gemm")
	if !ok {
		fatal(fmt.Errorf("no gemm kernel"))
	}
	psrc, err := positdebug.RefactorToPosit(k.Source(8))
	if err != nil {
		fatal(err)
	}
	prog, err := positdebug.Compile(psrc)
	if err != nil {
		fatal(err)
	}
	add("shadow/gemm8-cold-run"+suffix, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := prog.Exec("main", positdebug.WithShadow(cfg), positdebug.WithBackend(bk)); err != nil {
				b.Fatal(err)
			}
		}
	})
	dbg, err := prog.Session(positdebug.WithShadow(cfg), positdebug.WithBackend(bk))
	if err != nil {
		fatal(err)
	}
	add("shadow/gemm8-warm-run"+suffix, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dbg.Exec("main"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// sweepBenches: end-to-end figure-scale work — the §5.1 detection suite and
// a 20-run fault-injection campaign, both sharded by internal/parallel.
func sweepBenches(add func(string, func(b *testing.B)), bk backend.Kind, suffix string) {
	add("harness/detect-suite"+suffix, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := harness.RunDetectionOn(bk, nil, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	ccfg := faultinject.CampaignConfig{
		Workload: "polybench/gemm", N: 8, Runs: 20, Seed: 42, Backend: bk,
	}
	add("campaign/gemm8-20runs"+suffix, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := faultinject.RunCampaign(ccfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pdbench:", err)
	os.Exit(1)
}
