package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"positdebug/internal/server"
	"positdebug/internal/workloads"

	positdebug "positdebug"
)

// ServeScenario is one serve-path measurement: a fixed request replayed
// Requests times at the given concurrency against an in-process server.
type ServeScenario struct {
	Name        string  `json:"name"`
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	ReqPerSec   float64 `json:"requests_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
}

// ServeReport is the file format of BENCH_serve.json.
type ServeReport struct {
	Go         string          `json:"go"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Scenarios  []ServeScenario `json:"scenarios"`
}

// serveBench measures the HTTP service end to end — admission, compile
// cache, shadow execution, response encoding — over a loopback listener,
// and writes the report to outPath ("" = stdout).
func serveBench(outPath string, requests int) error {
	k, ok := workloads.KernelByName("gemm")
	if !ok {
		return fmt.Errorf("no gemm kernel")
	}
	psrc, err := positdebug.RefactorToPosit(k.Source(8))
	if err != nil {
		return err
	}

	srv := server.New(server.Config{DefaultTimeout: 30 * time.Second})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, l) }()
	defer func() {
		cancel()
		<-done
	}()
	base := "http://" + l.Addr().String()

	rep := &ServeReport{
		Go: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	conc := runtime.GOMAXPROCS(0)
	scenarios := []struct {
		name string
		req  server.RunRequest
	}{
		{"serve/gemm8-shadow", server.RunRequest{Source: psrc}},
		{"serve/gemm8-baseline", server.RunRequest{Source: psrc, Baseline: true}},
	}
	for _, sc := range scenarios {
		s, err := runServeScenario(base, sc.name, sc.req, requests, conc)
		if err != nil {
			return err
		}
		rep.Scenarios = append(rep.Scenarios, s)
		fmt.Fprintf(os.Stderr, "%-24s %8.1f req/s  p50 %7.2f ms  p99 %7.2f ms  (%d reqs, %d workers)\n",
			s.Name, s.ReqPerSec, s.P50Ms, s.P99Ms, s.Requests, s.Concurrency)
	}

	j, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	j = append(j, '\n')
	if outPath == "" {
		os.Stdout.Write(j)
		return nil
	}
	return os.WriteFile(outPath, j, 0o644)
}

func runServeScenario(base, name string, rr server.RunRequest, requests, conc int) (ServeScenario, error) {
	body, err := json.Marshal(rr)
	if err != nil {
		return ServeScenario{}, err
	}
	post := func() (time.Duration, error) {
		t0 := time.Now()
		resp, err := http.Post(base+"/run", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		var run server.RunResponse
		if err := json.NewDecoder(resp.Body).Decode(&run); err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("%s: status %d", name, resp.StatusCode)
		}
		return time.Since(t0), nil
	}

	// Warmup: populate the compile cache and the HTTP client's connection
	// pool so the measurement is the steady-state warm path.
	for i := 0; i < 2*conc; i++ {
		if _, err := post(); err != nil {
			return ServeScenario{}, err
		}
	}

	lat := make([]time.Duration, requests)
	var idx, failed int64
	var mu sync.Mutex
	next := func() int {
		mu.Lock()
		defer mu.Unlock()
		if int(idx) >= requests {
			return -1
		}
		i := int(idx)
		idx++
		return i
	}
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next()
				if i < 0 {
					return
				}
				d, err := post()
				if err != nil {
					mu.Lock()
					failed++
					mu.Unlock()
					return
				}
				lat[i] = d
			}
		}()
	}
	wg.Wait()
	wall := time.Since(t0)
	if failed > 0 {
		return ServeScenario{}, fmt.Errorf("%s: %d requests failed", name, failed)
	}

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(lat)-1))
		return float64(lat[i]) / float64(time.Millisecond)
	}
	return ServeScenario{
		Name: name, Requests: requests, Concurrency: conc,
		ReqPerSec: float64(requests) / wall.Seconds(),
		P50Ms:     pct(0.50), P99Ms: pct(0.99),
	}, nil
}
