package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	positdebug "positdebug"
	"positdebug/internal/profile"
	"positdebug/internal/shadow"
	"positdebug/internal/workloads"
)

// ProfileBenchRow is one profiling variant's measurement: how much a warm
// shadow run costs with the numerical-error profiler attached at a given
// sampling stride, and what fraction of dynamic compute instances the
// stride actually error-checked (the accuracy side of the tradeoff).
type ProfileBenchRow struct {
	Name string `json:"name"`
	// Sample is the stride: 0 = uninstrumented baseline, 1 = full shadow.
	Sample  int     `json:"sample"`
	NsPerOp float64 `json:"ns_per_op"`
	// Slowdown is NsPerOp over the uninstrumented baseline's.
	Slowdown float64 `json:"slowdown_vs_baseline"`
	// CheckedOps / TotalOps are per-run dynamic compute instances checked
	// against the shadow oracle vs executed (profiled variants only).
	CheckedOps int64   `json:"checked_ops,omitempty"`
	TotalOps   int64   `json:"total_ops,omitempty"`
	CheckedPct float64 `json:"checked_pct,omitempty"`
}

// ProfileReport is the file format of BENCH_profile.json.
type ProfileReport struct {
	Go         string            `json:"go"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Kernel     string            `json:"kernel"`
	N          int               `json:"n"`
	Rows       []ProfileBenchRow `json:"rows"`
}

// profileBench measures the full-shadow vs sampled-shadow overhead
// tradeoff on one PolyBench kernel: uninstrumented baseline, plain shadow
// execution, and shadow execution with the profiler at strides 1/4/16/64,
// all on warm sessions so the numbers isolate per-run cost.
func profileBench(out, kernel string, n int) error {
	k, ok := workloads.KernelByName(kernel)
	if !ok {
		return fmt.Errorf("no kernel %q", kernel)
	}
	psrc, err := positdebug.RefactorToPosit(k.Source(n))
	if err != nil {
		return err
	}
	prog, err := positdebug.Compile(psrc)
	if err != nil {
		return err
	}
	prog.SetSourceName(kernel)
	mod := prog.Instrumented()
	cfg := shadow.DefaultConfig()
	cfg.Tracing = false
	cfg.MaxReports = 1

	rep := &ProfileReport{
		Go: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0), Kernel: kernel, N: n,
	}
	emit := func(row ProfileBenchRow) {
		rep.Rows = append(rep.Rows, row)
		fmt.Fprintf(os.Stderr, "%-26s %14.2f ns/op %8.2fx baseline", row.Name, row.NsPerOp, row.Slowdown)
		if row.TotalOps > 0 {
			fmt.Fprintf(os.Stderr, "  checked %5.1f%% of ops", row.CheckedPct)
		}
		fmt.Fprintln(os.Stderr)
	}

	base := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := prog.Exec("main", positdebug.WithBaseline()); err != nil {
				b.Fatal(err)
			}
		}
	})
	baseNs := float64(base.T.Nanoseconds()) / float64(base.N)
	emit(ProfileBenchRow{Name: "baseline", Sample: 0, NsPerOp: baseNs, Slowdown: 1})

	plain, err := prog.Session(positdebug.WithShadow(cfg))
	if err != nil {
		return err
	}
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plain.Exec("main"); err != nil {
				b.Fatal(err)
			}
		}
	})
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	emit(ProfileBenchRow{Name: "shadow", Sample: 1, NsPerOp: ns, Slowdown: ns / baseNs})

	for _, stride := range []int{1, 4, 16, 64} {
		col := profile.NewCollector()
		dbg, err := prog.Session(
			positdebug.WithShadow(cfg),
			positdebug.WithProfile(col),
			positdebug.WithSampling(stride),
		)
		if err != nil {
			return err
		}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dbg.Exec("main"); err != nil {
					b.Fatal(err)
				}
			}
		})
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		snap := col.Snapshot(mod, kernel, "posit32", int64(r.N), int64(stride))
		var checked, total int64
		for _, ip := range snap.Insts {
			checked += ip.Checked
			total += ip.Count
		}
		row := ProfileBenchRow{
			Name: fmt.Sprintf("profile/sample-%d", stride), Sample: stride,
			NsPerOp: ns, Slowdown: ns / baseNs,
			CheckedOps: checked, TotalOps: total,
		}
		if total > 0 {
			row.CheckedPct = 100 * float64(checked) / float64(total)
		}
		emit(row)
	}

	j, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	j = append(j, '\n')
	if out == "" {
		_, err = os.Stdout.Write(j)
		return err
	}
	return os.WriteFile(out, j, 0o644)
}
