package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"positdebug/internal/fabric"
	"positdebug/internal/faultinject"
	"positdebug/internal/obs"
	"positdebug/internal/server"
)

// FabricBenchRow is one fleet size's campaign measurement: wall-clock for
// the whole distributed run (dispatch + execution + merge) and the
// resulting per-architecture-run throughput.
type FabricBenchRow struct {
	Name       string  `json:"name"`
	Workers    int     `json:"workers"`
	Seconds    float64 `json:"seconds"`
	RunsPerSec float64 `json:"runs_per_sec"`
	// Speedup is this row's throughput over the 1-worker row's.
	Speedup float64 `json:"speedup_vs_1_worker"`
}

// FabricReport is the file format of BENCH_fabric.json.
type FabricReport struct {
	Go         string           `json:"go"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Workload   string           `json:"workload"`
	N          int              `json:"n"`
	Runs       int              `json:"runs"`
	ShardSize  int              `json:"shard_size"`
	Rows       []FabricBenchRow `json:"rows"`
	// TraceOverheadPct is the wall-clock cost of full fleet tracing
	// (coordinator span collection + worker flight recorders + per-request
	// span-batch fetches) on the 3-worker row, in percent over untraced.
	TraceOverheadPct float64 `json:"trace_overhead_pct"`
	// MergeMS is the merged-report latency alone: assembling the final
	// report from already-fetched shard results (the coordinator's
	// critical section after the last worker answers).
	MergeMS float64 `json:"merge_ms"`
	// Ring measures compile-cache affinity under membership churn.
	Ring *RingBenchReport `json:"ring,omitempty"`
}

// RingBenchReport quantifies what consistent-hash worker selection buys:
// the fraction of same-kernel requests that re-hit a warm compile cache
// before and after a membership change, against the naive mod-hash
// placement a fleet without a ring would use.
type RingBenchReport struct {
	Kernels      int `json:"kernels"`
	VirtualNodes int `json:"virtual_nodes"`
	// StaticHitRate: warm re-requests on a stable 3-worker fleet.
	StaticHitRate float64 `json:"static_hit_rate"`
	// ChurnHitRate: re-requests routed by the post-join 4-worker ring —
	// only kernels on the moved arc go cold.
	ChurnHitRate float64 `json:"churn_hit_rate"`
	// MovedFraction: kernels whose ring owner changed when the fourth
	// worker joined (ideally ≈ 1/4).
	MovedFraction float64 `json:"moved_fraction"`
	// ModHashMovedFraction: how many kernels mod-hash placement
	// (hash % fleet size) would have moved on the same join (≈ 3/4).
	ModHashMovedFraction float64 `json:"mod_hash_moved_fraction"`
}

// fabricBench measures distributed campaign throughput with 1 vs 3
// in-process pdserve workers, plus the shard-merge latency on its own.
// Workers share this process's cores, so the 3-worker speedup is a lower
// bound for what distinct machines would show — the number reported is
// about fabric overhead (HTTP, scheduling, merge), not linear scaling.
// A traced 3-worker row measures the fleet-observability tax; -strict
// fails the bench if it exceeds maxTraceOverheadPct.
func fabricBench(out, workload string, n, runs, shardSize int, strict bool) error {
	const maxTraceOverheadPct = 5.0
	ccfg := faultinject.CampaignConfig{Workload: workload, N: n, Arch: "posit", Runs: runs, Seed: 42}
	rep := &FabricReport{
		Go: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0), Workload: workload, N: n,
		Runs: runs, ShardSize: shardSize,
	}

	// campaign runs one whole distributed campaign and reports wall-clock
	// seconds. With tracing, workers run flight recorders and the
	// coordinator collects spans and fetches every request's span batch —
	// the full observability plane, not just the cheap parts.
	campaign := func(nWorkers int, traced bool) (float64, error) {
		scfg := server.Config{DefaultTimeout: 30 * time.Second}
		if traced {
			scfg.FlightRecorder = 256
			scfg.FlightLog = io.Discard
		}
		urls := make([]string, nWorkers)
		servers := make([]*httptest.Server, nWorkers)
		for i := range urls {
			servers[i] = httptest.NewServer(server.New(scfg).Handler())
			urls[i] = servers[i].URL
		}
		defer func() {
			for _, ts := range servers {
				ts.Close()
			}
		}()
		fcfg := fabric.Config{Workers: urls, ShardSize: shardSize}
		var trace *fabric.FleetTrace
		if traced {
			trace = fabric.NewFleetTrace(workload, fmt.Sprint(runs), "bench")
			fcfg.Trace = trace
			fcfg.Progress = fabric.NewProgress()
		}
		co, err := fabric.New(fcfg)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := co.RunCampaign(context.Background(), ccfg); err != nil {
			return 0, err
		}
		secs := time.Since(start).Seconds()
		if traced {
			// The row must measure a real trace, not a silently empty one.
			var buf bytes.Buffer
			if err := trace.WriteChrome(&buf, "pdbench"); err != nil {
				return 0, err
			}
			if nEv, err := obs.ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
				return 0, fmt.Errorf("traced bench produced an invalid fleet trace: %w", err)
			} else if nEv == 0 {
				return 0, fmt.Errorf("traced bench produced an empty fleet trace")
			}
		}
		return secs, nil
	}

	// Campaigns this small finish in fractions of a second, where
	// scheduler noise swamps the signal; each configuration reports its
	// best of three runs, the standard wall-clock noise filter.
	best := func(nWorkers int, traced bool) (float64, error) {
		bestSecs := 0.0
		for rep := 0; rep < 3; rep++ {
			secs, err := campaign(nWorkers, traced)
			if err != nil {
				return 0, err
			}
			if bestSecs == 0 || secs < bestSecs {
				bestSecs = secs
			}
		}
		return bestSecs, nil
	}

	var baseRate, plainSecs float64
	for _, nWorkers := range []int{1, 3} {
		secs, err := best(nWorkers, false)
		if err != nil {
			return err
		}
		row := FabricBenchRow{
			Name: fmt.Sprintf("campaign/%d-worker", nWorkers), Workers: nWorkers,
			Seconds: secs, RunsPerSec: float64(runs) / secs,
		}
		if nWorkers == 1 {
			baseRate = row.RunsPerSec
			row.Speedup = 1
		} else if baseRate > 0 {
			row.Speedup = row.RunsPerSec / baseRate
			plainSecs = secs
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Fprintf(os.Stderr, "%-22s %8.2fs %10.2f runs/s %6.2fx\n", row.Name, row.Seconds, row.RunsPerSec, row.Speedup)
	}

	tracedSecs, err := best(3, true)
	if err != nil {
		return err
	}
	tracedRow := FabricBenchRow{
		Name: "campaign/3-worker-traced", Workers: 3,
		Seconds: tracedSecs, RunsPerSec: float64(runs) / tracedSecs,
	}
	if baseRate > 0 {
		tracedRow.Speedup = tracedRow.RunsPerSec / baseRate
	}
	rep.Rows = append(rep.Rows, tracedRow)
	if plainSecs > 0 {
		rep.TraceOverheadPct = (tracedSecs - plainSecs) / plainSecs * 100
	}
	fmt.Fprintf(os.Stderr, "%-22s %8.2fs %10.2f runs/s %6.2fx (trace overhead %+.1f%%)\n",
		tracedRow.Name, tracedRow.Seconds, tracedRow.RunsPerSec, tracedRow.Speedup, rep.TraceOverheadPct)
	if strict && rep.TraceOverheadPct > maxTraceOverheadPct {
		return fmt.Errorf("fleet tracing costs %.1f%% wall-clock (limit %.0f%%)", rep.TraceOverheadPct, maxTraceOverheadPct)
	}

	// Merge latency: shards already in hand, how long until report bytes.
	var shards []*faultinject.ShardResult
	for lo := 0; lo < runs; lo += shardSize {
		hi := lo + shardSize
		if hi > runs {
			hi = runs
		}
		sh, err := faultinject.RunShard(context.Background(), faultinject.ShardRequest{
			Version: faultinject.ShardVersion, Config: ccfg.Wire(), Arch: "posit", Lo: lo, Hi: hi,
		})
		if err != nil {
			return err
		}
		shards = append(shards, sh)
	}
	const mergeIters = 20
	start := time.Now()
	for i := 0; i < mergeIters; i++ {
		if _, err := faultinject.AssembleReport(ccfg, shards); err != nil {
			return err
		}
	}
	rep.MergeMS = float64(time.Since(start).Microseconds()) / 1000 / mergeIters
	fmt.Fprintf(os.Stderr, "%-22s %8.3fms per merge (%d shards)\n", "merge", rep.MergeMS, len(shards))

	ring, err := ringBench()
	if err != nil {
		return err
	}
	rep.Ring = ring
	fmt.Fprintf(os.Stderr, "%-22s %5.0f%% static, %5.0f%% after join (ring moved %.0f%%, mod-hash would move %.0f%%)\n",
		"cache affinity", ring.StaticHitRate*100, ring.ChurnHitRate*100,
		ring.MovedFraction*100, ring.ModHashMovedFraction*100)

	j, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	j = append(j, '\n')
	if out == "" {
		_, err = os.Stdout.Write(j)
		return err
	}
	return os.WriteFile(out, j, 0o644)
}

// ringBench measures compile-cache affinity across a membership change.
// Distinct synthetic kernels are warmed on a 3-worker fleet with requests
// routed by ring ownership; then a fourth worker joins, the ring is
// rebuilt, and every kernel is requested once more through the new ring.
// Kernels off the moved arc land on the worker that already compiled them
// (warm hit); mod-hash placement would have reshuffled almost everything.
func ringBench() (*RingBenchReport, error) {
	const kernels = 48
	workers := make([]*httptest.Server, 0, 4)
	defer func() {
		for _, ts := range workers {
			ts.Close()
		}
	}()
	addWorker := func() string {
		ts := httptest.NewServer(server.New(server.Config{DefaultTimeout: 30 * time.Second}).Handler())
		workers = append(workers, ts)
		return ts.URL
	}
	urls := []string{addWorker(), addWorker(), addWorker()}

	srcs := make([]string, kernels)
	for i := range srcs {
		srcs[i] = fmt.Sprintf("func main(): i64 { var r: i64 = %d; print(r); return r; }", i*7+1)
	}

	post := func(workerURL, src string) (cached bool, err error) {
		body, err := json.Marshal(server.RunRequest{Source: src})
		if err != nil {
			return false, err
		}
		resp, err := http.Post(workerURL+"/run", "application/json", bytes.NewReader(body))
		if err != nil {
			return false, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			return false, fmt.Errorf("ring bench: /run on %s: %d: %s", workerURL, resp.StatusCode, b)
		}
		var rr server.RunResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			return false, err
		}
		return rr.Cached, nil
	}

	rep := &RingBenchReport{Kernels: kernels, VirtualNodes: fabric.DefaultVirtualNodes}
	ring3 := fabric.NewRing(urls, fabric.DefaultVirtualNodes)

	// Cold pass then warm pass on the stable fleet, both ring-routed.
	for _, src := range srcs {
		if _, err := post(ring3.Owner(src), src); err != nil {
			return nil, err
		}
	}
	staticHits := 0
	for _, src := range srcs {
		hit, err := post(ring3.Owner(src), src)
		if err != nil {
			return nil, err
		}
		if hit {
			staticHits++
		}
	}
	rep.StaticHitRate = float64(staticHits) / kernels

	// A fourth worker joins; the ring moves one arc, mod-hash would
	// reshuffle nearly everything.
	urls4 := append(append([]string{}, urls...), addWorker())
	ring4 := fabric.NewRing(urls4, fabric.DefaultVirtualNodes)
	churnHits, moved, modMoved := 0, 0, 0
	for _, src := range srcs {
		if ring4.Owner(src) != ring3.Owner(src) {
			moved++
		}
		h := fnv.New64a()
		h.Write([]byte(src))
		if h.Sum64()%3 != h.Sum64()%4 {
			modMoved++
		}
		hit, err := post(ring4.Owner(src), src)
		if err != nil {
			return nil, err
		}
		if hit {
			churnHits++
		}
	}
	rep.ChurnHitRate = float64(churnHits) / kernels
	rep.MovedFraction = float64(moved) / kernels
	rep.ModHashMovedFraction = float64(modMoved) / kernels
	return rep, nil
}

