package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"time"

	"positdebug/internal/fabric"
	"positdebug/internal/faultinject"
	"positdebug/internal/server"
)

// FabricBenchRow is one fleet size's campaign measurement: wall-clock for
// the whole distributed run (dispatch + execution + merge) and the
// resulting per-architecture-run throughput.
type FabricBenchRow struct {
	Name       string  `json:"name"`
	Workers    int     `json:"workers"`
	Seconds    float64 `json:"seconds"`
	RunsPerSec float64 `json:"runs_per_sec"`
	// Speedup is this row's throughput over the 1-worker row's.
	Speedup float64 `json:"speedup_vs_1_worker"`
}

// FabricReport is the file format of BENCH_fabric.json.
type FabricReport struct {
	Go         string           `json:"go"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Workload   string           `json:"workload"`
	N          int              `json:"n"`
	Runs       int              `json:"runs"`
	ShardSize  int              `json:"shard_size"`
	Rows       []FabricBenchRow `json:"rows"`
	// MergeMS is the merged-report latency alone: assembling the final
	// report from already-fetched shard results (the coordinator's
	// critical section after the last worker answers).
	MergeMS float64 `json:"merge_ms"`
}

// fabricBench measures distributed campaign throughput with 1 vs 3
// in-process pdserve workers, plus the shard-merge latency on its own.
// Workers share this process's cores, so the 3-worker speedup is a lower
// bound for what distinct machines would show — the number reported is
// about fabric overhead (HTTP, scheduling, merge), not linear scaling.
func fabricBench(out, workload string, n, runs, shardSize int) error {
	ccfg := faultinject.CampaignConfig{Workload: workload, N: n, Arch: "posit", Runs: runs, Seed: 42}
	rep := &FabricReport{
		Go: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0), Workload: workload, N: n,
		Runs: runs, ShardSize: shardSize,
	}

	var baseRate float64
	for _, nWorkers := range []int{1, 3} {
		urls := make([]string, nWorkers)
		servers := make([]*httptest.Server, nWorkers)
		for i := range urls {
			servers[i] = httptest.NewServer(server.New(server.Config{DefaultTimeout: 30 * time.Second}).Handler())
			urls[i] = servers[i].URL
		}
		co, err := fabric.New(fabric.Config{Workers: urls, ShardSize: shardSize})
		if err != nil {
			return err
		}
		start := time.Now()
		if _, err := co.RunCampaign(context.Background(), ccfg); err != nil {
			return err
		}
		secs := time.Since(start).Seconds()
		for _, ts := range servers {
			ts.Close()
		}
		row := FabricBenchRow{
			Name: fmt.Sprintf("campaign/%d-worker", nWorkers), Workers: nWorkers,
			Seconds: secs, RunsPerSec: float64(runs) / secs,
		}
		if nWorkers == 1 {
			baseRate = row.RunsPerSec
			row.Speedup = 1
		} else if baseRate > 0 {
			row.Speedup = row.RunsPerSec / baseRate
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Fprintf(os.Stderr, "%-22s %8.2fs %10.2f runs/s %6.2fx\n", row.Name, row.Seconds, row.RunsPerSec, row.Speedup)
	}

	// Merge latency: shards already in hand, how long until report bytes.
	var shards []*faultinject.ShardResult
	for lo := 0; lo < runs; lo += shardSize {
		hi := lo + shardSize
		if hi > runs {
			hi = runs
		}
		sh, err := faultinject.RunShard(context.Background(), faultinject.ShardRequest{
			Version: faultinject.ShardVersion, Config: ccfg.Wire(), Arch: "posit", Lo: lo, Hi: hi,
		})
		if err != nil {
			return err
		}
		shards = append(shards, sh)
	}
	const mergeIters = 20
	start := time.Now()
	for i := 0; i < mergeIters; i++ {
		if _, err := faultinject.AssembleReport(ccfg, shards); err != nil {
			return err
		}
	}
	rep.MergeMS = float64(time.Since(start).Microseconds()) / 1000 / mergeIters
	fmt.Fprintf(os.Stderr, "%-22s %8.3fms per merge (%d shards)\n", "merge", rep.MergeMS, len(shards))

	j, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	j = append(j, '\n')
	if out == "" {
		_, err = os.Stdout.Write(j)
		return err
	}
	return os.WriteFile(out, j, 0o644)
}
