// Command pdcoord is the coordinator of the distributed campaign/profile
// fabric: it shards a fault-injection campaign (or a profiling sweep)
// across a fleet of pdserve workers and merges the streamed-back results
// into a report byte-identical to a single-process run of the same
// configuration.
//
// Usage (static fleet):
//
//	pdserve -addr :8701 &
//	pdserve -addr :8702 &
//	pdcoord -workers http://localhost:8701,http://localhost:8702 \
//	        -workload polybench/gemm -seed 42 -runs 200 -arch both -json
//
// Usage (elastic fleet — workers find the coordinator):
//
//	pdserve -addr :8701 -coordinator http://localhost:8731 &
//	pdserve -addr :8702 -coordinator http://localhost:8731 &
//	pdcoord -listen 127.0.0.1:8731 -min-workers 2 \
//	        -workload polybench/gemm -seed 42 -runs 200 -arch both -json
//
// -listen serves the registrar (POST /fabric/register, /fabric/deregister,
// GET /fabric/members): workers self-register, heartbeat, and may join or
// leave mid-campaign — a joiner starts taking shards immediately, a drain
// announcement migrates in-flight leases without waiting for expiry, and
// silent workers are expired by heartbeat TTL and active /readyz probing.
// Worker selection walks a consistent-hash ring keyed by kernel identity,
// so same-kernel shards keep landing on workers with warm compile caches
// and membership churn moves only the affected arc. -workers and -listen
// compose; at least one is required.
//
// Worker failures are the expected case, not the exceptional one: shards
// are retried with capped exponential backoff (429 Retry-After windows
// are honored as flow control), repeatedly failing workers are ejected
// and re-admitted on probation, hung workers lose their shard lease and
// the shard is reassigned, and straggler shards are hedged onto idle
// workers. With -journal, merged results are write-ahead-logged in the
// same format pdfault uses: a killed coordinator rerun with the same
// flags re-dispatches only the missing runs and produces the same bytes.
//
// -profile switches to profile mode: the same fleet executes slices of a
// shadow-execution profiling sweep and pdcoord merges them into one
// canonical profile JSON (see pdprof for the single-process equivalent).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"positdebug/internal/fabric"
	"positdebug/internal/faultinject"
	"positdebug/internal/obs"
)

// parseWorkers splits a -workers list into validated base URLs: entries
// are trimmed, empties (trailing commas, doubled commas) dropped, and
// anything that isn't an absolute http(s) URL rejected with an error
// naming the offending entry.
func parseWorkers(list string) ([]string, error) {
	var out []string
	for _, entry := range strings.Split(list, ",") {
		if strings.TrimSpace(entry) == "" {
			continue
		}
		u, err := fabric.NormalizeWorkerURL(entry)
		if err != nil {
			return nil, fmt.Errorf("-workers: %v", err)
		}
		out = append(out, u)
	}
	return out, nil
}

func main() {
	workers := flag.String("workers", "", "comma-separated pdserve base URLs (optional when -listen is set)")
	listen := flag.String("listen", "", "serve the worker-registration endpoint on this address; workers join with pdserve -coordinator")
	minWorkers := flag.Int("min-workers", 1, "with -listen: wait for this many registered workers before dispatching")
	heartbeatTTL := flag.Duration("heartbeat-ttl", 15*time.Second, "with -listen: drop a registered worker whose heartbeats stop for this long")
	probeInterval := flag.Duration("probe-interval", 3*time.Second, "with -listen: /readyz probe cadence for every member (negative = off)")
	vnodes := flag.Int("vnodes", fabric.DefaultVirtualNodes, "virtual nodes per worker on the consistent-hash ring")
	jitterSeed := flag.Int64("jitter-seed", 0, "seed for backoff/hedge jitter (0 = time-derived); fixed seeds replay retry schedules")
	workload := flag.String("workload", "polybench/gemm", "workload: polybench/<kernel>, spec/<kernel>, suite/<program>")
	n := flag.Int("n", 0, "problem size (0 = campaign default)")
	runs := flag.Int("runs", 100, "fault-injected runs per architecture (profile mode: total runs)")
	seed := flag.Int64("seed", 1, "campaign seed (determines every fault)")
	model := flag.String("model", "bitflip", "fault kind: bitflip|multiflip|nar|saturate")
	ops := flag.String("ops", "all", "injectable op classes: comma list of arith,const,cast,load,store,call or all")
	bit := flag.Int("bit", -1, "pin flipped bit position (-1 = random per injection)")
	flips := flag.Int("flips", 2, "bits flipped per multiflip injection")
	rate := flag.Float64("rate", 0, "per-event injection probability (0 = single fault per run)")
	occ := flag.Int64("occ", 0, "pin injection to the k-th eligible event (0 = sweep sites)")
	inst := flag.Int("inst", -1, "restrict injection to one static instruction id (-1 = any)")
	arch := flag.String("arch", "posit", "architecture: posit|float|both")
	runTimeout := flag.Duration("run-timeout", 10*time.Second, "wall-clock limit per run (executed worker-side)")
	timeout := flag.Duration("timeout", 0, "whole-job deadline (0 = none)")
	journalPath := flag.String("journal", "", "crash-safe WAL journal: merged runs are fsync'd here and a rerun dispatches only the rest")
	maxSteps := flag.Int64("max-steps", 200_000_000, "step budget per run")
	prec := flag.Uint("prec", 256, "shadow precision in bits")
	budget := flag.Int64("budget", 0, "shadow-memory budget in bytes (0 = unlimited)")
	threshold := flag.Int("threshold", 10, "masked threshold in output error bits (0 = default 10, -1 = exact match)")
	schedules := flag.Bool("schedules", false, "embed per-run fault schedules in the JSON report")
	jsonOut := flag.Bool("json", false, "emit the full report as JSON")
	tracePath := flag.String("trace", "", "collect a fleet-wide distributed trace and write it here as one Perfetto-loadable Chrome trace-event file")
	metricsPath := flag.String("metrics", "", "write a Prometheus text metrics dump to this file ('-' = stderr)")
	verbose := flag.Bool("v", false, "log scheduling events (retries, ejections, hedges, leases) to stderr")

	shardSize := flag.Int("shard-size", 16, "runs per dispatched shard")
	maxAttempts := flag.Int("max-attempts", 5, "failed attempts per shard before the job errors out")
	lease := flag.Duration("lease", 2*time.Minute, "per-attempt lease; an expired lease reassigns the shard")
	hedge := flag.Duration("hedge", 30*time.Second, "duplicate a shard still running after this long onto an idle worker (negative = off)")
	eject := flag.Int("eject-after", 3, "consecutive failures that eject a worker")
	probation := flag.Duration("probation", 10*time.Second, "ejection window before probational re-admission")

	profileMode := flag.Bool("profile", false, "profile mode: distribute a shadow-profiling sweep instead of a campaign")
	kernel := flag.String("kernel", "gemm", "profile mode: kernel name")
	posit := flag.Bool("posit", true, "profile mode: refactor the kernel to posits before profiling")
	sample := flag.Int("sample", 1, "profile mode: shadow sampling stride")
	flag.Parse()

	workerURLs, err := parseWorkers(*workers)
	if err != nil {
		fail(err)
	}
	if len(workerURLs) == 0 && *listen == "" {
		fail(errors.New("no fleet: pass -workers (static URLs), -listen (worker self-registration), or both"))
	}

	fcfg := fabric.Config{
		Workers:      workerURLs,
		ShardSize:    *shardSize,
		MaxAttempts:  *maxAttempts,
		LeaseTimeout: *lease,
		HedgeAfter:   *hedge,
		EjectAfter:   *eject,
		Probation:    *probation,
		VirtualNodes: *vnodes,
		JitterSeed:   *jitterSeed,
	}
	if *verbose {
		fcfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "pdcoord: "+format+"\n", args...)
		}
	}
	// The registry also backs /metrics on the -listen endpoint, so an
	// elastic-fleet coordinator always has one even without -metrics.
	var reg *obs.Registry
	if *metricsPath != "" || *listen != "" {
		reg = obs.NewRegistry()
		fcfg.Metrics = reg
	}

	var trace *fabric.FleetTrace
	if *tracePath != "" {
		if *profileMode {
			trace = fabric.NewFleetTrace("profile", *kernel, fmt.Sprint(*runs))
		} else {
			trace = fabric.NewFleetTrace(*workload, fmt.Sprint(*runs), fmt.Sprint(*seed))
		}
		fcfg.Trace = trace
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// -listen: serve the registrar next to the campaign so the fleet can
	// assemble (and keep changing) while shards are in flight.
	if *listen != "" {
		members := fabric.NewMembership()
		fcfg.Members = members
		registrar, err := fabric.NewRegistrar(fabric.RegistrarConfig{
			Members:       members,
			HeartbeatTTL:  *heartbeatTTL,
			ProbeInterval: *probeInterval,
			Metrics:       reg,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "pdcoord: "+format+"\n", args...)
			},
		})
		if err != nil {
			fail(err)
		}
		// The same endpoint serves the live-observability plane: fleet
		// status, the SSE event stream, and Prometheus metrics.
		prog := fabric.NewProgress()
		bus := fabric.NewBus()
		fcfg.Progress = prog
		fcfg.Events = bus
		fh := fabric.NewFleetHandler(members, prog, bus, reg)
		mux := http.NewServeMux()
		mux.Handle("/fabric/", registrar.Handler())
		mux.Handle("/fleet/", fh.Handler())
		mux.Handle("/metrics", fh.Handler())

		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fail(err)
		}
		hs := &http.Server{Handler: mux}
		go hs.Serve(ln)
		go registrar.Run(ctx)
		defer hs.Close()
		fmt.Fprintf(os.Stderr, "pdcoord: registration endpoint on %s\n", ln.Addr())

		// Count static -workers toward the floor: they are members too.
		if err := waitForWorkers(ctx, members, len(workerURLs), *minWorkers); err != nil {
			fail(err)
		}
	}

	if *profileMode {
		co, err := fabric.New(fcfg)
		if err != nil {
			fail(err)
		}
		prof, err := co.RunProfile(ctx, fabric.ProfileSweep{
			Kernel: *kernel, N: *n, Posit: *posit, Runs: *runs,
			Sample: *sample, Precision: *prec,
		})
		if err != nil {
			fail(err)
		}
		if err := prof.WriteJSON(os.Stdout); err != nil {
			fail(err)
		}
		writeMetrics(reg, *metricsPath)
		writeTrace(trace, *tracePath)
		return
	}

	kind, err := faultinject.KindByName(*model)
	if err != nil {
		fail(err)
	}
	classes, err := faultinject.ClassByName(*ops)
	if err != nil {
		fail(err)
	}
	ccfg := faultinject.CampaignConfig{
		Workload: *workload,
		N:        *n,
		Arch:     *arch,
		Runs:     *runs,
		Seed:     *seed,
		Model: faultinject.Model{
			Kind:       kind,
			FlipBits:   *flips,
			BitPos:     *bit,
			Ops:        classes,
			InstID:     int32(*inst),
			Occurrence: *occ,
			Rate:       *rate,
		},
		Timeout:        *runTimeout,
		MaxSteps:       *maxSteps,
		Precision:      *prec,
		MaxShadowBytes: *budget,
		MaskedBits:     *threshold,
		KeepSchedules:  *schedules,
	}

	resumed := 0
	if *journalPath != "" {
		journal, err := faultinject.OpenJournal(*journalPath, ccfg)
		if err != nil {
			fail(err)
		}
		defer journal.Close()
		if resumed = journal.Resumed(); resumed > 0 {
			fmt.Fprintf(os.Stderr, "pdcoord: resuming past %d journaled runs\n", resumed)
		}
		fcfg.Journal = journal
	}

	co, err := fabric.New(fcfg)
	if err != nil {
		fail(err)
	}
	rep, err := co.RunCampaign(ctx, ccfg)
	if err != nil {
		if ctx.Err() != nil && *journalPath != "" {
			fmt.Fprintln(os.Stderr, "pdcoord: interrupted; rerun the same command to resume from the journal")
		}
		fail(err)
	}
	if *journalPath != "" {
		total := rep.Runs * len(rep.Arches)
		fmt.Fprintf(os.Stderr, "pdcoord: %d of %d runs replayed from journal, %d dispatched to workers\n",
			resumed, total, total-resumed)
	}
	writeMetrics(reg, *metricsPath)
	writeTrace(trace, *tracePath)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
		return
	}
	fmt.Print(rep)
}

// waitForWorkers blocks until enough workers have registered to satisfy
// -min-workers. Static -workers entries count toward the floor (they join
// the roster when the coordinator is built, after this wait), so only the
// remainder must arrive via registration.
func waitForWorkers(ctx context.Context, members *fabric.Membership, static, min int) error {
	need := min - static
	if need <= 0 {
		return nil
	}
	notify := members.Notify()
	if members.Len() < need {
		fmt.Fprintf(os.Stderr, "pdcoord: waiting for %d worker(s) to register...\n", need-members.Len())
	}
	for members.Len() < need {
		select {
		case <-ctx.Done():
			return fmt.Errorf("interrupted with %d of %d workers registered", members.Len()+static, min)
		case <-notify:
		}
	}
	fmt.Fprintf(os.Stderr, "pdcoord: fleet assembled: %d worker(s)\n", members.Len()+static)
	return nil
}

// writeTrace merges the coordinator spans with every fetched worker
// span batch into one Chrome trace-event file Perfetto can load whole.
func writeTrace(trace *fabric.FleetTrace, path string) {
	if trace == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := trace.WriteChrome(f, "pdcoord"); err != nil {
		fail(fmt.Errorf("trace: %w", err))
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "pdcoord: fleet trace written to %s\n", path)
}

func writeMetrics(reg *obs.Registry, path string) {
	if reg == nil || path == "" {
		return
	}
	f := os.Stderr
	if path != "-" {
		var err error
		f, err = os.Create(path)
		if err != nil {
			fail(err)
		}
	}
	if err := reg.WriteProm(f); err != nil {
		fail(fmt.Errorf("metrics: %w", err))
	}
	if f != os.Stderr {
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pdcoord:", err)
	os.Exit(1)
}
