// Command pdserve runs PositDebug as a hardened HTTP service: POST a PCL
// program to /run and get back its result, step count and shadow-oracle
// detections.
//
// Usage:
//
//	pdserve -addr :8080 -concurrency 8 -queue 32
//
// The service is built for sustained operation: admission is bounded (load
// beyond the queue is shed with 429 + Retry-After), every run is governed
// by the request context (a disconnected client stops the interpreter
// within a few thousand instructions), panics are isolated per request,
// and -soft-mem-limit enables a watchdog that degrades shadow precision
// 256→128→64 under memory pressure instead of falling over. SIGTERM/
// Ctrl-C drain gracefully: in-flight requests finish, new ones get 503,
// and the process exits 0.
//
// Observability: every request gets an id (X-Request-Id, stamped on every
// event it emits). -flight N arms a per-request flight recorder — the last
// N events (lifecycle, detections, causal spans) are dumped as JSONL to
// -flight-log whenever a request answers 5xx or reports detections.
// -profile aggregates per-instruction numerical-error profiles across
// requests (keyed by source hash) at /debug/profile; -pprof mounts Go's
// runtime profiling endpoints under /debug/pprof/.
//
// Fleet membership: -coordinator http://coord:8731 makes the worker
// self-register with a pdcoord registrar and heartbeat every -heartbeat
// interval, advertising its capacity/oracle/backend tier. The worker may
// start before the coordinator — failed beats retry forever. On SIGTERM
// the drain announces departure to the coordinator first, so in-flight
// shard leases migrate immediately instead of waiting out their expiry.
// -advertise overrides the URL the coordinator dials back (default:
// derived from the listen address).
//
// Endpoints: POST /run, GET /healthz, /readyz, /metrics (Prometheus text),
// and optionally GET /debug/profile, /debug/pprof/*.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"positdebug/internal/backend"
	"positdebug/internal/server"
	"positdebug/internal/shadow/oracle"
)

// advertiseURL derives the base URL workers advertise to the coordinator
// from the bound listener address: an unspecified host (":8080",
// "0.0.0.0") is replaced with 127.0.0.1 — good for single-host fleets,
// which is what address-less listening means; multi-host fleets pass
// -advertise explicitly.
func advertiseURL(addr net.Addr) string {
	host, port := "127.0.0.1", ""
	if tcp, ok := addr.(*net.TCPAddr); ok {
		if ip := tcp.IP; ip != nil && !ip.IsUnspecified() {
			host = ip.String()
			if ip.To4() == nil {
				host = "[" + host + "]"
			}
		}
		port = fmt.Sprintf("%d", tcp.Port)
	} else if h, p, err := net.SplitHostPort(addr.String()); err == nil {
		if h != "" && h != "::" && h != "0.0.0.0" {
			host = h
		}
		port = p
	}
	return "http://" + host + ":" + port
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	concurrency := flag.Int("concurrency", 0, "max simultaneously executing runs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "max queued runs before load shedding (0 = 4x concurrency)")
	timeout := flag.Duration("run-timeout", 2*time.Second, "default per-run wall-clock budget")
	maxTimeout := flag.Duration("max-run-timeout", 30*time.Second, "cap on the per-request timeout_ms field")
	maxSteps := flag.Int64("max-steps", 50_000_000, "per-run instruction budget")
	prec := flag.Uint("prec", 256, "bigfp shadow precision in bits at zero memory pressure")
	oracleFlag := flag.String("oracle", "bigfp", "shadow oracle at zero memory pressure: bigfp|dd|residue")
	shadowBudget := flag.Int64("shadow-budget", 0, "per-run shadow-memory budget in bytes (0 = unlimited)")
	softMem := flag.Uint64("soft-mem-limit", 0, "heap bytes at which the watchdog degrades the shadow-oracle tier (0 = off)")
	drain := flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
	flight := flag.Int("flight", 256, "per-request flight-recorder capacity in events (0 = off)")
	flightLog := flag.String("flight-log", "", "file receiving flight-recorder JSONL dumps (default stderr)")
	profileReqs := flag.Bool("profile", false, "aggregate per-instruction numerical-error profiles at /debug/profile")
	profileSample := flag.Int("profile-sample", 1, "shadow sampling stride for request profiling (1 = full shadow)")
	pprofFlag := flag.Bool("pprof", false, "mount Go runtime profiling at /debug/pprof/")
	backendFlag := flag.String("backend", "", "execution backend for every served run: treewalk|vm (default treewalk)")
	coordinator := flag.String("coordinator", "", "fabric coordinator registrar base URL to self-register with (pdcoord -listen)")
	advertise := flag.String("advertise", "", "base URL the coordinator should dial this worker at (default: derived from -addr)")
	heartbeat := flag.Duration("heartbeat", 5*time.Second, "registration heartbeat interval when -coordinator is set")
	flag.Parse()

	var flightW io.Writer
	if *flightLog != "" {
		f, err := os.OpenFile(*flightLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdserve:", err)
			os.Exit(1)
		}
		defer f.Close()
		flightW = f
	}

	bk, err := backend.Parse(*backendFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdserve:", err)
		os.Exit(2)
	}
	orc, err := oracle.Parse(*oracleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdserve:", err)
		os.Exit(2)
	}

	srv := server.New(server.Config{
		MaxConcurrent:   *concurrency,
		MaxQueue:        *queue,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		MaxSteps:        *maxSteps,
		Precision:       *prec,
		Oracle:          orc,
		MaxShadowBytes:  *shadowBudget,
		SoftMemLimit:    *softMem,
		DrainTimeout:    *drain,
		FlightRecorder:  *flight,
		FlightLog:       flightW,
		ProfileRequests: *profileReqs,
		ProfileSample:   *profileSample,
		EnablePprof:     *pprofFlag,
		Backend:         bk,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdserve:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pdserve: listening on %s\n", l.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *coordinator != "" {
		adv := *advertise
		if adv == "" {
			adv = advertiseURL(l.Addr())
		}
		go srv.RegisterLoop(ctx, server.RegisterConfig{
			Coordinator: *coordinator,
			Advertise:   adv,
			Interval:    *heartbeat,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "pdserve: "+format+"\n", args...)
			},
		})
	}
	if err := srv.Serve(ctx, l); err != nil {
		fmt.Fprintln(os.Stderr, "pdserve:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "pdserve: drained; bye")
}
