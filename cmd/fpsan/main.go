// Command fpsan is the FPSanitizer command-line driver: the same shadow
// execution and metadata organization as PositDebug, applied to IEEE
// floating-point PCL programs (§4.3 of the paper).
//
// Usage:
//
//	fpsan [flags] program.pcl
package main

import (
	"flag"
	"fmt"
	"os"

	positdebug "positdebug"
	"positdebug/internal/shadow"
)

func main() {
	prec := flag.Uint("prec", 256, "shadow precision in bits (128/256/512)")
	noTracing := flag.Bool("no-tracing", false, "disable DAG metadata (detection only)")
	entry := flag.String("entry", "main", "entry function")
	baseline := flag.Bool("baseline", false, "run uninstrumented")
	herb := flag.Bool("herbgrind", false, "run under the Herbgrind-style baseline runtime instead")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fpsan [flags] program.pcl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	prog, err := positdebug.Compile(string(src))
	if err != nil {
		fail(err)
	}
	switch {
	case *baseline:
		res, err := prog.Exec(*entry, positdebug.WithBaseline())
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Output)
	case *herb:
		res, err := prog.Exec(*entry, positdebug.WithHerbgrind(*prec))
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Output)
		fmt.Printf("\nherbgrind-style run: %d dynamic trace nodes accumulated\n", res.TraceNodes)
	default:
		cfg := shadow.DefaultConfig()
		cfg.Precision = *prec
		cfg.Tracing = !*noTracing
		res, err := prog.Exec(*entry, positdebug.WithShadow(cfg))
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Output)
		fmt.Println()
		fmt.Print(res.Summary)
		for _, r := range res.Summary.Reports {
			fmt.Println()
			fmt.Println(r)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fpsan:", err)
	os.Exit(1)
}
