// Command pdfault runs deterministic fault-injection campaigns against
// PositDebug workloads and reports the resilience breakdown — masked, SDC,
// detected, crashed, hung — per architecture (posit vs float), using the
// shadow-execution oracle as the detector.
//
// Usage:
//
//	pdfault -workload polybench/gemm -seed 42 -model bitflip -runs 200
//
// The whole campaign is a pure function of the seed: rerunning with the
// same flags yields a byte-identical report (use -json to diff). The same
// holds for the -trace event stream: events are staged per run and merged
// in run order, so the trace is byte-identical regardless of GOMAXPROCS
// (unless -trace-workers adds the scheduling-dependent lifecycle events).
//
// Long campaigns are crash-safe with -journal: every completed run is
// write-ahead-logged (fsync'd per record), and rerunning the same command
// resumes past the journaled runs — the resumed report is byte-identical
// to an uninterrupted one. -timeout bounds the whole campaign's wall
// clock, and Ctrl-C/SIGTERM stop it cooperatively; both paths leave the
// journal resumable.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"positdebug/internal/backend"
	"positdebug/internal/faultinject"
	"positdebug/internal/interp"
	"positdebug/internal/obs"
	"positdebug/internal/shadow/oracle"
	"positdebug/internal/workloads"
)

func main() {
	workload := flag.String("workload", "polybench/gemm", "workload: polybench/<kernel>, spec/<kernel>, suite/<program>")
	n := flag.Int("n", 0, "problem size (0 = campaign default)")
	runs := flag.Int("runs", 100, "fault-injected runs per architecture")
	seed := flag.Int64("seed", 1, "campaign seed (determines every fault)")
	model := flag.String("model", "bitflip", "fault kind: bitflip|multiflip|nar|saturate")
	ops := flag.String("ops", "all", "injectable op classes: comma list of arith,const,cast,load,store,call or all")
	bit := flag.Int("bit", -1, "pin flipped bit position (-1 = random per injection)")
	flips := flag.Int("flips", 2, "bits flipped per multiflip injection")
	rate := flag.Float64("rate", 0, "per-event injection probability (0 = single fault per run)")
	occ := flag.Int64("occ", 0, "pin injection to the k-th eligible event (0 = sweep sites)")
	inst := flag.Int("inst", -1, "restrict injection to one static instruction id (-1 = any)")
	arch := flag.String("arch", "posit", "architecture: posit|float|both")
	runTimeout := flag.Duration("run-timeout", 10*time.Second, "wall-clock limit per run")
	timeout := flag.Duration("timeout", 0, "whole-campaign deadline (0 = none); an expired deadline cancels the sweep cooperatively")
	journalPath := flag.String("journal", "", "crash-safe JSONL write-ahead journal: completed runs are fsync'd here and resumed on rerun")
	maxSteps := flag.Int64("max-steps", 200_000_000, "step budget per run")
	prec := flag.Uint("prec", 256, "bigfp shadow precision in bits")
	oracleFlag := flag.String("oracle", "bigfp", "shadow oracle: bigfp|dd|residue")
	budget := flag.Int64("budget", 0, "shadow-memory budget in bytes (0 = unlimited; over-budget runs degrade)")
	threshold := flag.Int("threshold", 10, "masked threshold in output error bits (0 = default 10, -1 = exact match)")
	jsonOut := flag.Bool("json", false, "emit the full report as JSON")
	schedules := flag.Bool("schedules", false, "embed per-run fault schedules in the JSON report")
	tracePath := flag.String("trace", "", "write a JSON-lines campaign event trace to this file ('-' = stderr)")
	traceWorkers := flag.Bool("trace-workers", false, "include worker lifecycle events in the trace (scheduling-dependent)")
	metricsPath := flag.String("metrics", "", "write a Prometheus text metrics dump to this file ('-' = stderr)")
	list := flag.Bool("list", false, "list available workloads and exit")
	backendFlag := flag.String("backend", "", "execution backend: treewalk|vm (default treewalk)")
	flag.Parse()

	if *list {
		listWorkloads()
		return
	}

	kind, err := faultinject.KindByName(*model)
	if err != nil {
		fail(err)
	}
	classes, err := faultinject.ClassByName(*ops)
	if err != nil {
		fail(err)
	}
	bk, err := backend.Parse(*backendFlag)
	if err != nil {
		fail(err)
	}
	orc, err := oracle.Parse(*oracleFlag)
	if err != nil {
		fail(err)
	}

	cfg := faultinject.CampaignConfig{
		Workload: *workload,
		N:        *n,
		Arch:     *arch,
		Runs:     *runs,
		Seed:     *seed,
		Model: faultinject.Model{
			Kind:       kind,
			FlipBits:   *flips,
			BitPos:     *bit,
			Ops:        classes,
			InstID:     int32(*inst),
			Occurrence: *occ,
			Rate:       *rate,
		},
		Timeout:        *runTimeout,
		MaxSteps:       *maxSteps,
		Precision:      *prec,
		Oracle:         orc,
		MaxShadowBytes: *budget,
		MaskedBits:     *threshold,
		KeepSchedules:  *schedules,
		Backend:        bk,
	}
	var sink *obs.JSONLines
	var traceFile *os.File
	if *tracePath != "" {
		var err error
		traceFile, err = outFile(*tracePath)
		if err != nil {
			fail(err)
		}
		sink = obs.NewJSONLines(traceFile)
		cfg.Trace = sink
		cfg.TraceWorkers = *traceWorkers
	}
	var reg *obs.Registry
	if *metricsPath != "" {
		reg = obs.NewRegistry()
		cfg.Metrics = reg
	}
	resumed := 0
	if *journalPath != "" {
		journal, err := faultinject.OpenJournal(*journalPath, cfg)
		if err != nil {
			fail(err)
		}
		defer journal.Close()
		if resumed = journal.Resumed(); resumed > 0 {
			fmt.Fprintf(os.Stderr, "pdfault: resuming past %d journaled runs\n", resumed)
		}
		cfg.Journal = journal
	}

	// One context carries both hard-stop paths: the whole-campaign
	// deadline and Ctrl-C/SIGTERM. Either cancels the sweep cooperatively —
	// the run in flight stops within one interpreter poll interval — and
	// with -journal the completed prefix stays resumable.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	rep, err := faultinject.RunCampaignContext(ctx, cfg)
	if err != nil {
		var c *interp.Cancelled
		if errors.As(err, &c) && *journalPath != "" {
			fmt.Fprintln(os.Stderr, "pdfault: campaign interrupted; rerun the same command to resume from the journal")
		}
		fail(err)
	}
	if sink != nil {
		if err := sink.Err(); err != nil {
			fail(fmt.Errorf("trace: %w", err))
		}
		if err := closeFile(traceFile); err != nil {
			fail(err)
		}
	}
	if reg != nil {
		f, err := outFile(*metricsPath)
		if err != nil {
			fail(err)
		}
		if err := reg.WriteProm(f); err != nil {
			fail(fmt.Errorf("metrics: %w", err))
		}
		if err := closeFile(f); err != nil {
			fail(err)
		}
	}

	// The resume split goes to stderr in both output modes: how much of
	// the campaign was replayed from the journal versus executed now is
	// the first thing to check when a resumed run finishes suspiciously
	// fast (or slow).
	if cfg.Journal != nil {
		total := rep.Runs * len(rep.Arches)
		fmt.Fprintf(os.Stderr, "pdfault: %d of %d runs replayed from journal, %d executed this invocation\n",
			resumed, total, total-resumed)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
		return
	}
	fmt.Print(rep)
}

func listWorkloads() {
	var names []string
	for _, k := range workloads.PolyBench() {
		names = append(names, "polybench/"+k.Name)
	}
	for _, k := range workloads.SpecLike() {
		names = append(names, "spec/"+k.Name)
	}
	for _, p := range workloads.Suite() {
		names = append(names, "suite/"+p.Name)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Println(n)
	}
}

// outFile opens path for writing; "-" means stderr, keeping stdout clean
// for the campaign report.
func outFile(path string) (*os.File, error) {
	if path == "-" {
		return os.Stderr, nil
	}
	return os.Create(path)
}

func closeFile(f *os.File) error {
	if f == os.Stderr {
		return nil
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pdfault:", err)
	os.Exit(1)
}
