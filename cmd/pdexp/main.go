// Command pdexp regenerates the paper's evaluation: every figure and table
// of §5 (detection effectiveness, Figures 7–10, the Herbgrind comparison,
// the software-posit baseline note, and the three debugging case studies).
//
// Usage:
//
//	pdexp -exp all            # everything (minutes)
//	pdexp -exp fig7 -quick    # one experiment at reduced problem sizes
//
// Experiments: detect, fig7, fig8, fig9, fig10, herbgrind, memory,
// softposit, rootcount, cordic, simpson, quadratic, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"positdebug/internal/harness"
	"positdebug/internal/obs"
)

// obsOut carries the optional observability attachments for the detect
// experiment: a JSON-lines event sink and a metrics registry, flushed to
// their files once the run finishes.
type obsOut struct {
	sink        *obs.JSONLines
	traceFile   *os.File
	reg         *obs.Registry
	metricsPath string
}

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	quick := flag.Bool("quick", false, "reduced problem sizes")
	repeats := flag.Int("repeats", 2, "timing repetitions (best-of)")
	par := flag.Bool("parallel", true,
		"shard kernels across CPUs (tables keep sequential order; disable for absolute timings)")
	tracePath := flag.String("trace", "", "write the detect suite's JSON-lines event trace to this file")
	metricsPath := flag.String("metrics", "", "write a Prometheus metrics dump of the detect suite to this file")
	flag.Parse()

	var oo obsOut
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdexp:", err)
			os.Exit(1)
		}
		oo.traceFile = f
		oo.sink = obs.NewJSONLines(f)
	}
	if *metricsPath != "" {
		oo.reg = obs.NewRegistry()
		oo.metricsPath = *metricsPath
	}

	opts := harness.Options{Quick: *quick, Repeats: *repeats, Parallel: *par}
	run := func(name string) {
		if err := runOne(name, opts, &oo); err != nil {
			fmt.Fprintf(os.Stderr, "pdexp %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	defer flushObs(&oo)
	if *exp == "all" {
		for _, name := range []string{
			"detect", "kernels", "softposit", "fig7", "fig8", "fig9", "fig10",
			"herbgrind", "memory", "rootcount", "cordic", "simpson", "quadratic",
		} {
			run(name)
		}
		return
	}
	run(*exp)
}

func runOne(name string, opts harness.Options, oo *obsOut) error {
	fmt.Printf("==== %s ====\n", name)
	defer fmt.Println()
	switch name {
	case "detect":
		var sink obs.Sink
		if oo.sink != nil {
			sink = oo.sink
		}
		d, err := harness.RunDetectionObs(sink, oo.reg)
		if err != nil {
			return err
		}
		fmt.Print(d)
	case "kernels":
		rows, err := harness.KernelErrors(opts, 35)
		if err != nil {
			return err
		}
		fmt.Print(harness.FormatKernelErrors(rows, 35))
	case "fig7":
		t, err := harness.Fig7(opts)
		if err != nil {
			return err
		}
		fmt.Print(t)
	case "fig8":
		t, err := harness.Fig8(opts)
		if err != nil {
			return err
		}
		fmt.Print(t)
	case "fig9":
		t, err := harness.Fig9(opts)
		if err != nil {
			return err
		}
		fmt.Print(t)
	case "fig10":
		t, err := harness.Fig10(opts)
		if err != nil {
			return err
		}
		fmt.Print(t)
	case "herbgrind":
		t, err := harness.HerbgrindTable(opts)
		if err != nil {
			return err
		}
		fmt.Print(t)
	case "memory":
		sizes := []int{100, 1000, 10000, 100000}
		if opts.Quick {
			sizes = []int{10, 100, 1000}
		}
		rows, err := harness.MemoryGrowth(sizes)
		if err != nil {
			return err
		}
		fmt.Print(harness.FormatMemoryRows(rows))
	case "softposit":
		n := 64
		if opts.Quick {
			n = 32
		}
		ratio := harness.SoftPositBaseline(n, opts.Repeats)
		fmt.Printf("software posit32 gemm vs native float64 gemm (n=%d): %.1f× slower\n", n, ratio)
		fmt.Println("(the paper reports ~11× for SoftPosit-C vs hardware FP)")
	case "rootcount":
		c, err := harness.RunRootCount()
		if err != nil {
			return err
		}
		fmt.Print(c)
	case "cordic":
		c, err := harness.RunCordic(1e-8)
		if err != nil {
			return err
		}
		fmt.Print(c)
		samples := 2000
		if opts.Quick {
			samples = 500
		}
		fmt.Println(harness.CordicAccuracy(samples, 0, 1.5707963267948966))
	case "simpson":
		n := 20000
		if opts.Quick {
			n = 2000
		}
		c, err := harness.RunSimpson(n)
		if err != nil {
			return err
		}
		fmt.Print(c)
	case "quadratic":
		c, err := harness.RunQuadratic()
		if err != nil {
			return err
		}
		fmt.Print(c)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

// flushObs finalizes the trace file and writes the metrics dump.
func flushObs(oo *obsOut) {
	if oo.sink != nil {
		if err := oo.sink.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "pdexp: trace:", err)
			os.Exit(1)
		}
		if err := oo.traceFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "pdexp:", err)
			os.Exit(1)
		}
	}
	if oo.reg != nil {
		f, err := os.Create(oo.metricsPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdexp:", err)
			os.Exit(1)
		}
		if err := oo.reg.WriteProm(f); err != nil {
			fmt.Fprintln(os.Stderr, "pdexp: metrics:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "pdexp:", err)
			os.Exit(1)
		}
	}
}
