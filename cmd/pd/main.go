// Command pd is the PositDebug command-line driver: it compiles a PCL
// posit program, applies the shadow-execution instrumentation, runs it,
// and reports detected numerical errors with their instruction DAGs —
// the workflow of the paper's §4.2 prototype.
//
// Usage:
//
//	pd [flags] program.pcl
//
// Environment (mirroring the paper's prototype):
//
//	PD_ERROR_THRESHOLD  per-op error bits threshold (default 45)
//	PD_REPORT_LIMIT     maximum detailed reports (default 16)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	positdebug "positdebug"
	"positdebug/internal/shadow"
)

func main() {
	prec := flag.Uint("prec", 256, "shadow precision in bits (128/256/512)")
	noTracing := flag.Bool("no-tracing", false, "disable DAG metadata (detection only)")
	entry := flag.String("entry", "main", "entry function")
	baseline := flag.Bool("baseline", false, "run uninstrumented (no shadow execution)")
	outThreshold := flag.Int("out-threshold", 35, "output error bits threshold")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pd [flags] program.pcl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	prog, err := positdebug.Compile(string(src))
	if err != nil {
		fail(err)
	}
	if *baseline {
		res, err := prog.Run(*entry)
		if err != nil {
			fail(err)
		}
		fmt.Print(res.Output)
		return
	}
	cfg := shadow.DefaultConfig()
	cfg.Precision = *prec
	cfg.Tracing = !*noTracing
	cfg.OutputThreshold = *outThreshold
	if v := os.Getenv("PD_ERROR_THRESHOLD"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			cfg.ErrBitsThreshold = n
		}
	}
	cfg.MaxReports = 16
	if v := os.Getenv("PD_REPORT_LIMIT"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			cfg.MaxReports = n
		}
	}
	res, err := prog.Debug(cfg, *entry)
	if err != nil {
		fail(err)
	}
	fmt.Print(res.Output)
	fmt.Println()
	fmt.Print(res.Summary)
	for _, r := range res.Summary.Reports {
		fmt.Println()
		fmt.Println(r)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pd:", err)
	os.Exit(1)
}
