// Command pd is the PositDebug command-line driver: it compiles a PCL
// posit program, applies the shadow-execution instrumentation, runs it,
// and reports detected numerical errors with their instruction DAGs —
// the workflow of the paper's §4.2 prototype.
//
// Usage:
//
//	pd [flags] program.pcl
//
// Observability:
//
//	pd -trace out.jsonl -dot out.dot -metrics out.prom program.pcl
//
// writes a structured JSON-lines event trace (run framing, detections,
// degradations), the error DAGs as Graphviz DOT, and a Prometheus text
// metrics dump (detections by kind, ULP-error histograms, per-opcode
// timing) alongside the normal report.
//
// Environment (mirroring the paper's prototype):
//
//	PD_ERROR_THRESHOLD  per-op error bits threshold (default 45)
//	PD_REPORT_LIMIT     maximum detailed reports (default 16)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	positdebug "positdebug"
	"positdebug/internal/backend"
	"positdebug/internal/obs"
	"positdebug/internal/shadow"
	"positdebug/internal/shadow/oracle"
)

func main() {
	prec := flag.Uint("prec", 256, "bigfp shadow precision in bits (128/256/512)")
	oracleFlag := flag.String("oracle", "bigfp", "shadow oracle: bigfp|dd|residue")
	noTracing := flag.Bool("no-tracing", false, "disable DAG metadata (detection only)")
	entry := flag.String("entry", "main", "entry function")
	baseline := flag.Bool("baseline", false, "run uninstrumented (no shadow execution)")
	outThreshold := flag.Int("out-threshold", 35, "output error bits threshold")
	tracePath := flag.String("trace", "", "write a JSON-lines event trace to this file ('-' = stdout)")
	metricsPath := flag.String("metrics", "", "write a Prometheus text metrics dump to this file ('-' = stdout)")
	dotPath := flag.String("dot", "", "write the error DAGs as Graphviz DOT to this file ('-' = stdout)")
	backendFlag := flag.String("backend", "", "execution backend: treewalk|vm (default treewalk)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pd [flags] program.pcl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	prog, err := positdebug.Compile(string(src))
	if err != nil {
		fail(err)
	}

	bk, err := backend.Parse(*backendFlag)
	if err != nil {
		fail(err)
	}
	orc, err := oracle.Parse(*oracleFlag)
	if err != nil {
		fail(err)
	}

	opts := []positdebug.Option{positdebug.WithBackend(bk)}
	var sink *obs.JSONLines
	var traceFile *os.File
	if *tracePath != "" {
		traceFile, err = outFile(*tracePath)
		if err != nil {
			fail(err)
		}
		sink = obs.NewJSONLines(traceFile)
		opts = append(opts, positdebug.WithTrace(sink))
	}
	var reg *obs.Registry
	if *metricsPath != "" {
		reg = obs.NewRegistry()
		opts = append(opts, positdebug.WithMetrics(reg))
	}

	if *baseline {
		opts = append(opts, positdebug.WithBaseline())
	} else {
		cfg := shadow.ConfigFor(orc, *prec)
		cfg.Tracing = !*noTracing
		cfg.OutputThreshold = *outThreshold
		if v := os.Getenv("PD_ERROR_THRESHOLD"); v != "" {
			if n, err := strconv.Atoi(v); err == nil {
				cfg.ErrBitsThreshold = n
			}
		}
		cfg.MaxReports = 16
		if v := os.Getenv("PD_REPORT_LIMIT"); v != "" {
			if n, err := strconv.Atoi(v); err == nil {
				cfg.MaxReports = n
			}
		}
		opts = append(opts, positdebug.WithShadow(cfg))
	}

	res, err := prog.Exec(*entry, opts...)
	if err != nil {
		fail(err)
	}
	fmt.Print(res.Output)
	if res.Summary != nil {
		fmt.Println()
		fmt.Print(res.Summary)
		for _, r := range res.Summary.Reports {
			fmt.Println()
			fmt.Println(r)
		}
	}

	if sink != nil {
		if err := sink.Err(); err != nil {
			fail(fmt.Errorf("trace: %w", err))
		}
		if err := closeFile(traceFile); err != nil {
			fail(err)
		}
	}
	if *dotPath != "" {
		if res.Summary == nil {
			fail(fmt.Errorf("-dot requires a shadow run (drop -baseline)"))
		}
		f, err := outFile(*dotPath)
		if err != nil {
			fail(err)
		}
		if err := res.Summary.WriteDOT(f); err != nil {
			fail(fmt.Errorf("dot: %w", err))
		}
		if err := closeFile(f); err != nil {
			fail(err)
		}
	}
	if reg != nil {
		f, err := outFile(*metricsPath)
		if err != nil {
			fail(err)
		}
		if err := reg.WriteProm(f); err != nil {
			fail(fmt.Errorf("metrics: %w", err))
		}
		if err := closeFile(f); err != nil {
			fail(err)
		}
	}
}

// outFile opens path for writing; "-" means stdout.
func outFile(path string) (*os.File, error) {
	if path == "-" {
		return os.Stdout, nil
	}
	return os.Create(path)
}

func closeFile(f *os.File) error {
	if f == os.Stdout {
		return nil
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pd:", err)
	os.Exit(1)
}
