// Command positinfo inspects posit configurations and values: it decodes
// bit patterns into their sign/regime/exponent/fraction fields, shows the
// tapered-precision profile of a configuration (the ULP map that explains
// the "golden zone"), and converts decimal values to posits.
//
// Usage:
//
//	positinfo -n 32 -es 2                  # configuration summary + ULP map
//	positinfo -n 8 -es 1 -bits 01101101    # decode a pattern (the paper's §2.1 example)
//	positinfo -n 32 -es 2 -value 13.7      # round a decimal and show the fields
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"

	"positdebug/internal/posit"
)

func main() {
	n := flag.Uint("n", 32, "total bits (3..32)")
	es := flag.Uint("es", 2, "max exponent bits (0..5)")
	bitsStr := flag.String("bits", "", "binary pattern to decode")
	valueStr := flag.String("value", "", "decimal value to round and decode")
	flag.Parse()

	cfg := posit.Config{N: *n, ES: *es}
	if err := cfg.Validate(); err != nil {
		fail(err)
	}
	switch {
	case *bitsStr != "":
		v, err := strconv.ParseUint(*bitsStr, 2, 64)
		if err != nil || v > cfg.Mask() {
			fail(fmt.Errorf("bad pattern %q for ⟨%d,%d⟩", *bitsStr, *n, *es))
		}
		describe(cfg, posit.Bits(v))
	case *valueStr != "":
		p, err := cfg.Parse(*valueStr)
		if err != nil {
			fail(err)
		}
		describe(cfg, p)
	default:
		summary(cfg)
	}
}

func describe(cfg posit.Config, p posit.Bits) {
	fmt.Printf("⟨%d,%d⟩ pattern %s\n", cfg.N, cfg.ES, cfg.BitString(p))
	fmt.Printf("  fields (s|regime|exp|frac): %s\n", cfg.FieldString(p))
	fmt.Printf("  value: %s\n", cfg.Format(p))
	if cfg.IsNaR(p) || cfg.IsZero(p) {
		return
	}
	d := cfg.Decode(cfg.Abs(p))
	fmt.Printf("  scale (combined exponent): %d\n", d.Scale)
	fmt.Printf("  regime bits: %d, fraction bits available: %d\n", d.RegimeBits, d.FracBits)
	fmt.Printf("  ULP here: %g\n", cfg.ULP(p))
}

func summary(cfg posit.Config) {
	fmt.Printf("posit ⟨%d,%d⟩ configuration\n", cfg.N, cfg.ES)
	fmt.Printf("  useed = 2^%d\n", cfg.UseedLog2())
	fmt.Printf("  maxpos = %g (scale %d), minpos = %g (scale %d)\n",
		cfg.MaxValue(), cfg.ScaleMax(), cfg.MinValue(), cfg.ScaleMin())
	fmt.Printf("  NaR pattern: %s\n", cfg.BitString(cfg.NaR()))
	fmt.Println()
	fmt.Println("tapered precision profile (fraction bits and relative ULP by magnitude):")
	fmt.Printf("  %14s %10s %14s\n", "magnitude", "frac bits", "rel ULP")
	for e := 0; ; e += int(cfg.UseedLog2()) {
		if e > cfg.ScaleMax() {
			break
		}
		show(cfg, e)
		if e != 0 {
			show(cfg, -e)
		}
	}
}

func show(cfg posit.Config, scale int) {
	v := cfg.FromFloat64(math.Ldexp(1, scale))
	if cfg.IsZero(v) || cfg.IsNaR(v) {
		return
	}
	d := cfg.Decode(cfg.Abs(v))
	fmt.Printf("  %14g %10d %14.3g\n",
		cfg.ToFloat64(v), d.FracBits, cfg.ULP(v)/math.Abs(cfg.ToFloat64(v)))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "positinfo:", err)
	os.Exit(1)
}
