// Command obscheck validates observability artifacts: JSON-lines event
// traces against the closed event schema (kind taxonomy, strict sequence
// numbering, per-kind required fields) and Graphviz DOT files for
// structural well-formedness — without needing graphviz installed. It is
// the checker behind `make trace-smoke`.
//
// It also validates Chrome trace-event JSON (pdprof -trace output) for
// Perfetto-loadability: known phases, required fields, positive pid/tid.
//
// Usage:
//
//	obscheck -jsonl trace.jsonl -dot dag.dot -chrome trace.json
//
// Any flag may be given alone; each may be repeated via comma-separated
// paths. Exits nonzero on the first violation.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"positdebug/internal/obs"
)

func main() {
	jsonl := flag.String("jsonl", "", "comma-separated JSON-lines trace files to validate")
	dot := flag.String("dot", "", "comma-separated Graphviz DOT files to validate")
	chrome := flag.String("chrome", "", "comma-separated Chrome trace-event JSON files to validate")
	quiet := flag.Bool("q", false, "suppress per-file summaries")
	flag.Parse()
	if *jsonl == "" && *dot == "" && *chrome == "" {
		fmt.Fprintln(os.Stderr, "usage: obscheck [-jsonl trace.jsonl[,..]] [-dot dag.dot[,..]] [-chrome trace.json[,..]]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	for _, path := range splitPaths(*jsonl) {
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		n, verr := obs.ValidateJSONLines(f)
		f.Close()
		if verr != nil {
			fail(fmt.Errorf("%s: %w", path, verr))
		}
		if !*quiet {
			fmt.Printf("%s: %d events OK\n", path, n)
		}
	}
	for _, path := range splitPaths(*dot) {
		src, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		if err := obs.CheckDOT(string(src)); err != nil {
			fail(fmt.Errorf("%s: %w", path, err))
		}
		if !*quiet {
			fmt.Printf("%s: DOT OK\n", path)
		}
	}
	for _, path := range splitPaths(*chrome) {
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		n, verr := obs.ValidateChromeTrace(f)
		f.Close()
		if verr != nil {
			fail(fmt.Errorf("%s: %w", path, verr))
		}
		if !*quiet {
			fmt.Printf("%s: %d trace events OK\n", path, n)
		}
	}
}

func splitPaths(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "obscheck:", err)
	os.Exit(1)
}
