// Command pdprof records, merges and inspects numerical-error profiles:
// per-static-instruction aggregates of ULP error, cancellation severity,
// saturation/NaR counts and (optionally) shadow-op latency, keyed by
// source position.
//
// Usage:
//
//	pdprof record -kernel gemm -runs 4 -o gemm.pdprof.json
//	pdprof record -kernel gemm -sample 16 -trace gemm.trace.json -o sampled.json
//	pdprof merge -o merged.json worker0.json worker1.json
//	pdprof top -n 20 merged.json
//	pdprof diff before.json after.json
//
// Profiles are canonical JSON: the same sweep produces byte-identical
// files whatever the worker count, so profiles diff cleanly and merge
// order never matters. The -trace output is Chrome trace-event JSON —
// load it in Perfetto (ui.perfetto.dev) or chrome://tracing; its
// timestamps are virtual sequence numbers, so it too is deterministic.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"positdebug/internal/harness"
	"positdebug/internal/obs"
	"positdebug/internal/profile"
	"positdebug/internal/shadow/oracle"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "merge":
		err = cmdMerge(os.Args[2:])
	case "top":
		err = cmdTop(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "pdprof: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pdprof:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  pdprof record -kernel <name> [-n N] [-fp] [-runs R] [-workers W]
                [-sample S] [-timing] [-prec P] [-oracle bigfp|dd|residue] [-trace file] [-o file]
  pdprof merge  -o <file> <profile.json>...
  pdprof top    [-n N] <profile.json>
  pdprof diff   <a.json> <b.json>`)
}

// outFile opens path for writing, with "" and "-" meaning stdout.
func outFile(path string) (io.Writer, func() error, error) {
	if path == "" || path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func writeProfile(p *profile.Profile, path string) error {
	w, closeFn, err := outFile(path)
	if err != nil {
		return err
	}
	if err := p.WriteJSON(w); err != nil {
		closeFn()
		return err
	}
	return closeFn()
}

func readProfile(path string) (*profile.Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := profile.ReadJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("pdprof record", flag.ExitOnError)
	kernel := fs.String("kernel", "gemm", "workload kernel (PolyBench or SPEC-like)")
	n := fs.Int("n", 0, "problem size (0 = small default)")
	fp := fs.Bool("fp", false, "profile the FP original under FPSanitizer instead of the posit refactoring")
	runs := fs.Int("runs", 1, "dynamic runs aggregated into the profile")
	workers := fs.Int("workers", 0, "worker count (0 = GOMAXPROCS); the merged profile is identical either way")
	sample := fs.Int("sample", 1, "shadow every Sth dynamic instance per static instruction (1 = full shadow)")
	timing := fs.Bool("timing", false, "record shadow-op latency (makes the profile nondeterministic)")
	prec := fs.Uint("prec", 0, "bigfp shadow precision in bits (0 = default)")
	oracleFlag := fs.String("oracle", "bigfp", "shadow oracle: bigfp|dd|residue")
	tracePath := fs.String("trace", "", "also write a Chrome trace-event JSON of the sweep (Perfetto-loadable)")
	out := fs.String("o", "", "profile output file (default stdout)")
	fs.Parse(args)

	orc, err := oracle.Parse(*oracleFlag)
	if err != nil {
		return err
	}

	var buf *obs.SeqBuffer
	var sink obs.Sink
	if *tracePath != "" {
		buf = &obs.SeqBuffer{}
		sink = buf
	}
	p, err := harness.RecordProfile(harness.ProfileOptions{
		Kernel:    *kernel,
		N:         *n,
		Posit:     !*fp,
		Runs:      *runs,
		Workers:   *workers,
		Sample:    *sample,
		Timing:    *timing,
		Precision: *prec,
		Oracle:    orc,
		Trace:     sink,
	})
	if err != nil {
		return err
	}
	if buf != nil {
		w, closeFn, err := outFile(*tracePath)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(w, buf.Events()); err != nil {
			closeFn()
			return err
		}
		if err := closeFn(); err != nil {
			return err
		}
	}
	return writeProfile(p, *out)
}

func cmdMerge(args []string) error {
	fs := flag.NewFlagSet("pdprof merge", flag.ExitOnError)
	out := fs.String("o", "", "merged profile output file (default stdout)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("merge: no input profiles")
	}
	ps := make([]*profile.Profile, 0, fs.NArg())
	for _, path := range fs.Args() {
		p, err := readProfile(path)
		if err != nil {
			return err
		}
		ps = append(ps, p)
	}
	merged, err := profile.MergeAll(ps...)
	if err != nil {
		return err
	}
	return writeProfile(merged, *out)
}

func cmdTop(args []string) error {
	fs := flag.NewFlagSet("pdprof top", flag.ExitOnError)
	n := fs.Int("n", 20, "instructions to list")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("top: want exactly one profile, got %d", fs.NArg())
	}
	p, err := readProfile(fs.Arg(0))
	if err != nil {
		return err
	}
	return p.WriteTop(os.Stdout, *n)
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("pdprof diff", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff: want exactly two profiles, got %d", fs.NArg())
	}
	a, err := readProfile(fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := readProfile(fs.Arg(1))
	if err != nil {
		return err
	}
	rows, err := profile.Diff(a, b)
	if err != nil {
		return err
	}
	return profile.WriteDiff(os.Stdout, rows)
}
