// Command positrefactor rewrites an IEEE floating-point PCL program into a
// ⟨32,2⟩ posit program — the paper's clang-based refactorer (§4.2), which
// let the authors port PolyBench and SPEC applications to posits without
// rewriting them by hand.
//
// Usage:
//
//	positrefactor program.pcl > program_posit.pcl
package main

import (
	"flag"
	"fmt"
	"os"

	positdebug "positdebug"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: positrefactor [-o out.pcl] program.pcl")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	rewritten, err := positdebug.RefactorToPosit(string(src))
	if err != nil {
		fail(err)
	}
	if *out == "" {
		fmt.Print(rewritten)
		return
	}
	if err := os.WriteFile(*out, []byte(rewritten), 0o644); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "positrefactor:", err)
	os.Exit(1)
}
